// Package obs is the station observability layer: a lightweight,
// allocation-conscious metrics registry (monotonic counters, gauges, and
// fixed-bucket histograms) plus a bounded decision-trace ring buffer.
//
// It differs from package metrics in purpose: metrics holds the offline
// statistics and figure renderers the paper's evaluation is built from,
// while obs instruments *running* systems — the per-tick hot path of a
// base station, the stationd HTTP daemon, the multi-cell aggregator. Its
// primitives are therefore pre-sized at registration time and lock-cheap
// to update: counters and gauges are single atomic words, a histogram
// observation is two atomic adds and one CAS, and nothing on the update
// path allocates. Rendering (Prometheus text format, JSON snapshots) is
// the cold path and may allocate freely.
//
// Metric names may carry a Prometheus label suffix (`name{cell="0"}`);
// the registry groups such series into one family (shared # HELP/# TYPE
// header) keyed by the name before the brace.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use and never allocate.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that may go up and down. The zero value reads
// 0; all methods are safe for concurrent use and never allocate.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicFloat accumulates a float64 sum with CAS.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nxt := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nxt) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram with Prometheus bucket semantics:
// bucket i counts observations v <= bounds[i], with an implicit +Inf
// bucket at the end. Bounds are fixed at registration, so Observe walks a
// short slice and performs three atomic operations — no locks, no
// allocation.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomicFloat
	n      atomic.Uint64
}

// newHistogram builds a histogram over the given ascending upper bounds.
func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, fmt.Errorf("obs: histogram bounds not ascending at %d: %v", i, bounds)
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}, nil
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// SnapshotInto copies the raw (non-cumulative) per-bucket counts into
// dst, which must have length len(Bounds())+1 (the last slot is the +Inf
// bucket), and returns the observation sum and count. It allocates
// nothing, so periodic shard merging can read histograms on a hot path.
// The copy is not atomic across buckets; callers that need exact totals
// must quiesce writers first (the multi-cell engine merges between ticks).
func (h *Histogram) SnapshotInto(dst []uint64) (sum float64, n uint64) {
	if len(dst) != len(h.counts) {
		panic(fmt.Sprintf("obs: SnapshotInto dst length %d, histogram has %d buckets", len(dst), len(h.counts)))
	}
	for i := range h.counts {
		dst[i] = h.counts[i].Load()
	}
	return h.sum.Value(), h.n.Load()
}

// AddRaw folds pre-aggregated observations into the histogram: per-bucket
// count deltas (length len(Bounds())+1, +Inf last), a sum delta, and a
// count delta. It is how an aggregate histogram absorbs the growth of
// per-cell shards without replaying individual observations.
func (h *Histogram) AddRaw(buckets []uint64, sum float64, n uint64) {
	if len(buckets) != len(h.counts) {
		panic(fmt.Sprintf("obs: AddRaw bucket length %d, histogram has %d buckets", len(buckets), len(h.counts)))
	}
	for i, c := range buckets {
		if c != 0 {
			h.counts[i].Add(c)
		}
	}
	if n != 0 {
		h.n.Add(n)
	}
	if sum != 0 {
		h.sum.Add(sum)
	}
}

// Cumulative returns the cumulative count at each bound, ending with the
// +Inf bucket (== N up to racing writers).
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// kind discriminates registered metrics.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// metric is one registered series.
type metric struct {
	name string // full series name, possibly with {label="v"} suffix
	help string
	kind kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family returns the Prometheus family name (the part before any label
// brace): both `x_total` and `x_total{cell="1"}` belong to family
// `x_total`.
func (m *metric) family() string {
	if i := strings.IndexByte(m.name, '{'); i >= 0 {
		return m.name[:i]
	}
	return m.name
}

// Registry holds a pre-sized set of named metrics. Registration takes a
// mutex and may allocate; it is meant to happen once, at setup. The
// returned Counter/Gauge/Histogram handles are then updated directly —
// the registry is never consulted on the hot path. Registering a name
// twice returns the existing metric (so several cells can share one
// aggregate series); re-registering a name as a different kind panics,
// as that is a programming error no caller can recover from.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) lookup(name string, k kind) *metric {
	m, ok := r.byName[name]
	if !ok {
		return nil
	}
	if m.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
	}
	return m
}

// Counter registers (or returns the existing) named counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, kindCounter); m != nil {
		return m.counter
	}
	m := &metric{name: name, help: help, kind: kindCounter, counter: &Counter{}}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m.counter
}

// Gauge registers (or returns the existing) named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, kindGauge); m != nil {
		return m.gauge
	}
	m := &metric{name: name, help: help, kind: kindGauge, gauge: &Gauge{}}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m.gauge
}

// Histogram registers (or returns the existing) named histogram over the
// given ascending bucket upper bounds (a +Inf bucket is implicit). It
// panics on invalid bounds — registration is setup-time code.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, kindHistogram); m != nil {
		return m.hist
	}
	h, err := newHistogram(bounds)
	if err != nil {
		panic(err.Error())
	}
	m := &metric{name: name, help: help, kind: kindHistogram, hist: h}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return h
}

// formatValue renders a float in Prometheus text format.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesWithLabel splices an extra label (`le="0.5"`) into a series name
// that may already carry a label block.
func seriesWithLabel(name, suffix, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		// name{cell="0"} -> name_suffix{cell="0",label}
		return name[:i] + suffix + "{" + name[i+1:len(name)-1] + "," + label + "}"
	}
	return name + suffix + "{" + label + "}"
}

// seriesWithSuffix appends a suffix to the family part of a series name:
// `x{cell="0"}` + `_sum` -> `x_sum{cell="0"}`.
func seriesWithSuffix(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, one family header per family in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	var b strings.Builder
	headerDone := make(map[string]bool)
	header := func(m *metric, typ string) {
		fam := m.family()
		if headerDone[fam] {
			return
		}
		headerDone[fam] = true
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam, m.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, typ)
	}
	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			header(m, "counter")
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case kindGauge:
			header(m, "gauge")
			fmt.Fprintf(&b, "%s %s\n", m.name, formatValue(m.gauge.Value()))
		case kindHistogram:
			header(m, "histogram")
			h := m.hist
			cum := h.Cumulative()
			for i, bound := range h.bounds {
				fmt.Fprintf(&b, "%s %d\n",
					seriesWithLabel(m.name, "_bucket", `le="`+formatValue(bound)+`"`), cum[i])
			}
			fmt.Fprintf(&b, "%s %d\n", seriesWithLabel(m.name, "_bucket", `le="+Inf"`), cum[len(cum)-1])
			fmt.Fprintf(&b, "%s %s\n", seriesWithSuffix(m.name, "_sum"), formatValue(h.Sum()))
			fmt.Fprintf(&b, "%s %d\n", seriesWithSuffix(m.name, "_count"), cum[len(cum)-1])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BucketSnapshot is one cumulative histogram bucket in a Snapshot.
type BucketSnapshot struct {
	LE    float64 `json:"le"` // +Inf encodes as the largest float64
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time histogram state.
type HistogramSnapshot struct {
	Count   uint64           `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// Snapshot is a point-in-time JSON-marshalable view of a registry, used
// by the figures CLI's -metrics-out and by scripts/bench.sh.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			s.Counters[m.name] = m.counter.Value()
		case kindGauge:
			s.Gauges[m.name] = m.gauge.Value()
		case kindHistogram:
			h := m.hist
			cum := h.Cumulative()
			hs := HistogramSnapshot{Count: cum[len(cum)-1], Sum: h.Sum()}
			for i, bound := range h.bounds {
				hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: bound, Count: cum[i]})
			}
			hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: math.MaxFloat64, Count: cum[len(cum)-1]})
			s.Histograms[m.name] = hs
		}
	}
	return s
}

// WriteFile marshals the snapshot as indented JSON (trailing newline)
// and writes it to path — the archive format shared by the figures CLI's
// -metrics-out and the experiment runner's per-run metrics.json. The
// bytes are a pure function of the registry state (encoding/json sorts
// the maps), but registries that record wall-clock durations (solve
// latency histograms) naturally vary between runs.
func (s Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Names returns the registered series names, sorted (for tests and
// debugging; registration order is preserved in WritePrometheus).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m.name)
	}
	sort.Strings(out)
	return out
}
