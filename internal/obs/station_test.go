package obs

import (
	"strings"
	"testing"
)

func TestHistogramSnapshotIntoAddRawRoundTrip(t *testing.T) {
	r := NewRegistry()
	src := r.Histogram("src", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100, 3, 1.5} {
		src.Observe(v)
	}
	buckets := make([]uint64, len(src.Bounds())+1)
	sum, n := src.SnapshotInto(buckets)
	if n != 6 || sum != 109.5 {
		t.Fatalf("snapshot sum=%v n=%d", sum, n)
	}

	dst := r.Histogram("dst", "", []float64{1, 2, 4})
	dst.AddRaw(buckets, sum, n)
	if dst.N() != src.N() || dst.Sum() != src.Sum() {
		t.Fatalf("round trip lost totals: n %d vs %d, sum %v vs %v", dst.N(), src.N(), dst.Sum(), src.Sum())
	}
	want := src.Cumulative()
	got := dst.Cumulative()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestHistogramSnapshotIntoLengthPanics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched SnapshotInto length accepted")
		}
	}()
	h.SnapshotInto(make([]uint64, 1))
}

func TestCellShardRegistration(t *testing.T) {
	r := NewRegistry()
	m := NewMulticellMetrics(r, 4)
	s0 := m.CellShard(0)
	s2 := m.CellShard(2)
	if s0 == nil || s2 == nil || s0 == s2 {
		t.Fatalf("shards not distinct: %p %p", s0, s2)
	}
	if m.CellShard(0) != s0 {
		t.Fatal("CellShard not idempotent")
	}
	if s0.Trace != m.Station.Trace {
		t.Fatal("shard does not share the aggregate trace ring")
	}
	s0.Requests.Add(3)
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `mobicache_requests_total{cell="0"} 3`) {
		t.Fatalf("labeled series missing from render:\n%s", out)
	}
	if !strings.Contains(out, `mobicache_ticks_total{cell="2"}`) {
		t.Fatalf("cell 2 series missing from render:\n%s", out)
	}
}

func TestCellShardPanics(t *testing.T) {
	r := NewRegistry()
	m := NewMulticellMetrics(r, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative cell accepted")
			}
		}()
		m.CellShard(-1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero-value bundle accepted")
			}
		}()
		var bare MulticellMetrics
		bare.CellShard(0)
	}()
}

func TestShardMergerCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	m := NewMulticellMetrics(r, 0)
	shards := []*StationMetrics{m.CellShard(0), m.CellShard(1)}
	merger := NewShardMerger(m.Station, shards)

	shards[0].Requests.Add(5)
	shards[1].Requests.Add(7)
	shards[0].DownloadUnits.Add(2)
	shards[0].TickBytes.Observe(2)
	shards[1].TickBytes.Observe(16)
	shards[0].Ticks.Inc() // must NOT leak into the aggregate
	shards[1].ServerUpdates.Add(9)
	shards[0].BudgetRemaining.Set(3)
	shards[1].BudgetRemaining.Set(4)

	merger.Merge()
	if got := m.Station.Requests.Value(); got != 12 {
		t.Fatalf("aggregate requests = %d, want 12", got)
	}
	if got := m.Station.DownloadUnits.Value(); got != 2 {
		t.Fatalf("aggregate units = %d, want 2", got)
	}
	if got := m.Station.Ticks.Value(); got != 0 {
		t.Fatalf("shard cell-ticks leaked into aggregate: %d", got)
	}
	if got := m.Station.ServerUpdates.Value(); got != 0 {
		t.Fatalf("shard server-updates leaked into aggregate: %d", got)
	}
	if got := m.Station.TickBytes.N(); got != 2 {
		t.Fatalf("aggregate histogram n = %d, want 2", got)
	}
	if got := m.Station.TickBytes.Sum(); got != 18 {
		t.Fatalf("aggregate histogram sum = %v, want 18", got)
	}
	if got := m.Station.BudgetRemaining.Value(); got != 7 {
		t.Fatalf("aggregate budget = %v, want 7", got)
	}

	// A second merge with no shard growth must add nothing.
	merger.Merge()
	if got := m.Station.Requests.Value(); got != 12 {
		t.Fatalf("idempotent merge broke: requests = %d", got)
	}
	if got := m.Station.TickBytes.N(); got != 2 {
		t.Fatalf("idempotent merge broke: histogram n = %d", got)
	}

	// Growth after the first merge arrives as a delta.
	shards[1].Requests.Add(1)
	shards[1].TickBytes.Observe(4)
	merger.Merge()
	if got := m.Station.Requests.Value(); got != 13 {
		t.Fatalf("delta merge: requests = %d, want 13", got)
	}
	if got := m.Station.TickBytes.Sum(); got != 22 {
		t.Fatalf("delta merge: histogram sum = %v, want 22", got)
	}

	// Any unlimited shard makes the aggregate budget unlimited.
	shards[0].BudgetRemaining.Set(float64(UnlimitedBudget))
	merger.Merge()
	if got := m.Station.BudgetRemaining.Value(); int64(got) != UnlimitedBudget {
		t.Fatalf("aggregate budget = %v, want unlimited sentinel", got)
	}
}

func TestShardMergerMergeDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	m := NewMulticellMetrics(r, 0)
	shards := []*StationMetrics{m.CellShard(0), m.CellShard(1), m.CellShard(2)}
	merger := NewShardMerger(m.Station, shards)
	merger.Merge() // warm
	allocs := testing.AllocsPerRun(100, func() {
		for _, s := range shards {
			s.Requests.Inc()
			s.ClientScore.Observe(0.5)
		}
		merger.Merge()
	})
	if allocs != 0 {
		t.Fatalf("Merge allocates %v objects/op, want 0", allocs)
	}
}

// TestShardMergerBaselinesExistingHistory pins the rebuild semantics: a
// merger built against shards that already carry values (a daemon running
// one simulation after another on the same registry) folds only growth
// after construction, never the pre-existing history.
func TestShardMergerBaselinesExistingHistory(t *testing.T) {
	r := NewRegistry()
	m := NewMulticellMetrics(r, 0)
	sh := m.CellShard(0)
	sh.Requests.Add(10)
	sh.TickBytes.Observe(5)

	merger := NewShardMerger(m.Station, []*StationMetrics{sh})
	merger.Merge()
	if got := m.Station.Requests.Value(); got != 0 {
		t.Fatalf("pre-existing history re-added: aggregate requests = %d", got)
	}
	if got := m.Station.TickBytes.N(); got != 0 {
		t.Fatalf("pre-existing history re-added: aggregate histogram n = %d", got)
	}

	sh.Requests.Add(2)
	sh.TickBytes.Observe(3)
	merger.Merge()
	if got := m.Station.Requests.Value(); got != 2 {
		t.Fatalf("post-construction growth = %d, want 2", got)
	}
	if got := m.Station.TickBytes.Sum(); got != 3 {
		t.Fatalf("post-construction histogram sum = %v, want 3", got)
	}
}
