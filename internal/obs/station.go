package obs

import (
	"fmt"
	"sync"
)

// Default bucket bounds for the station histograms. Exported so the
// daemon and tests can assert against the same layout.
var (
	// TickBytesBounds buckets the data units downloaded per tick.
	TickBytesBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	// FetchLatencyBounds buckets per-download fetch latency in simulated
	// ticks (attempts plus backoff).
	FetchLatencyBounds = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64}
	// ClientScoreBounds buckets the per-request client score in [0, 1].
	ClientScoreBounds = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}
	// SolveTimeBounds buckets the wall-clock knapsack/policy solve time
	// per tick, in seconds.
	SolveTimeBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}
	// WindowSizeBounds buckets the number of requests closed into one
	// selection window by the serve engine.
	WindowSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	// WindowWaitBounds buckets the wall-clock seconds a request waited
	// from ingestion to its window being served.
	WindowWaitBounds = []float64{1e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1}
)

// StationMetrics is the pre-registered metric bundle a base station
// updates on its per-tick hot path. Every field is registered up front,
// so steady-state ticks touch only atomic words and the bounded trace
// ring — zero allocations.
type StationMetrics struct {
	Ticks           *Counter // ticks executed
	Requests        *Counter // client requests served
	ServerUpdates   *Counter // master updates observed
	PolicyDownloads *Counter // downloads chosen by the policy
	MissDownloads   *Counter // compulsory downloads for cache misses
	FailedDownloads *Counter // downloads abandoned after retries/timeout
	Retries         *Counter // extra fetch attempts beyond the first
	StaleFallbacks  *Counter // requests served stale because a refresh failed
	DownloadUnits   *Counter // data units fetched over the fixed network

	// Resilience counters. Trips/probes/short-circuits follow the fetch
	// breaker; shed counts requests refused by admission control; the
	// degraded/shed tick counters measure time spent on each lower rung
	// of the degradation ladder (for a multi-cell aggregate they count
	// cell-ticks, like every merged series).
	BreakerTrips  *Counter // breaker closed/half-open → open transitions
	BreakerProbes *Counter // half-open probe fetches granted
	ShortCircuits *Counter // fetches refused outright by the open breaker
	ShedRequests  *Counter // requests refused by admission control
	DegradedTicks *Counter // ticks served in stale-only mode
	ShedTicks     *Counter // ticks that shed at least one request

	// BreakerState and ServiceMode expose the current resilience posture
	// (breaker: 0 closed, 1 half-open, 2 open; mode: 0 full,
	// 1 stale-only, 2 shed). A multi-cell aggregate reports the worst
	// value across live cells.
	BreakerState *Gauge
	ServiceMode  *Gauge

	// SolverFullResolves / SolverWarmResolves split the selection solves
	// by how much work they did: full counts cold solves that re-ran the
	// solver from scratch, warm counts solves served from incremental
	// state (unchanged-instance cache hits, checkpoint resumes, the
	// unit-weight fast path, and certified approximate passes). Their
	// ratio is the warm-start hit rate.
	SolverFullResolves *Counter
	SolverWarmResolves *Counter

	// Dissemination counters, produced only when a push/broadcast
	// strategy serves the cell; the on-demand pull path leaves them 0.
	// PushUnits is the broadcast-channel bandwidth (report headers +
	// report entries + aired slots), the push-side counterpart of
	// DownloadUnits on the fixed network.
	InvalidationReports *Counter // invalidation reports broadcast
	InvalidatedEntries  *Counter // terminal cache entries dropped by reports
	TerminalPurges      *Counter // whole-cache terminal drops after sleeping past coverage
	PushServed          *Counter // requests satisfied by the broadcast schedule
	PullServed          *Counter // requests satisfied by the pull backchannel
	PushUnits           *Counter // broadcast-channel bandwidth spent

	BudgetRemaining *Gauge // units left after the last tick's policy spend

	TickBytes    *Histogram // per-tick downloaded units
	FetchLatency *Histogram // per-download simulated fetch latency
	ClientScore  *Histogram // per-request client score
	SolveTime    *Histogram // per-tick policy decision wall time (seconds)

	// Trace records why each selection candidate was fetched or served
	// stale. Nil disables decision tracing.
	Trace *TraceRing
}

// newStationMetrics registers one station bundle whose series names all
// carry the given suffix (empty for the aggregate, `{cell="N"}` for a
// per-cell shard — the registry groups labeled series into one family).
// The trace ring is supplied by the caller so shards can share the
// aggregate ring instead of each allocating their own.
func newStationMetrics(r *Registry, suffix string, trace *TraceRing) *StationMetrics {
	n := func(base string) string { return base + suffix }
	return &StationMetrics{
		Ticks:           r.Counter(n("mobicache_ticks_total"), "simulated ticks executed"),
		Requests:        r.Counter(n("mobicache_requests_total"), "client requests served"),
		ServerUpdates:   r.Counter(n("mobicache_server_updates_total"), "master updates observed at the station"),
		PolicyDownloads: r.Counter(n("mobicache_policy_downloads_total"), "downloads chosen by the refresh policy"),
		MissDownloads:   r.Counter(n("mobicache_miss_downloads_total"), "compulsory downloads for cache misses"),
		FailedDownloads: r.Counter(n("mobicache_failed_downloads_total"), "downloads abandoned after retries/timeout"),
		Retries:         r.Counter(n("mobicache_fetch_retries_total"), "extra fetch attempts beyond the first"),
		StaleFallbacks:  r.Counter(n("mobicache_stale_fallbacks_total"), "requests served a stale copy because the refresh failed"),
		DownloadUnits:   r.Counter(n("mobicache_download_units_total"), "data units fetched over the fixed network"),
		BreakerTrips:    r.Counter(n("mobicache_breaker_trips_total"), "circuit breaker trips on the fetch path"),
		BreakerProbes:   r.Counter(n("mobicache_breaker_probes_total"), "half-open breaker probe fetches granted"),
		ShortCircuits:   r.Counter(n("mobicache_breaker_short_circuits_total"), "fetches refused outright by the open breaker"),
		ShedRequests:    r.Counter(n("mobicache_shed_requests_total"), "requests refused by admission control"),
		DegradedTicks:   r.Counter(n("mobicache_degraded_ticks_total"), "ticks served in stale-only mode (breaker open)"),
		ShedTicks:       r.Counter(n("mobicache_shed_ticks_total"), "ticks that shed at least one request"),
		BreakerState:    r.Gauge(n("mobicache_breaker_state"), "fetch breaker state (0 closed, 1 half-open, 2 open)"),
		ServiceMode:     r.Gauge(n("mobicache_service_mode"), "degradation-ladder rung (0 full, 1 stale-only, 2 shed)"),
		SolverFullResolves: r.Counter(n("mobicache_solver_full_resolves_total"),
			"selection solves that re-ran the knapsack solver from scratch"),
		SolverWarmResolves: r.Counter(n("mobicache_solver_warm_resolves_total"),
			"selection solves served from warm incremental solver state"),
		InvalidationReports: r.Counter(n("mobicache_invalidation_reports_total"), "invalidation reports broadcast to the cell"),
		InvalidatedEntries:  r.Counter(n("mobicache_invalidated_entries_total"), "terminal cache entries dropped by invalidation reports"),
		TerminalPurges:      r.Counter(n("mobicache_terminal_purges_total"), "whole-cache terminal drops after sleeping past report coverage"),
		PushServed:          r.Counter(n("mobicache_push_served_total"), "requests satisfied by the broadcast schedule"),
		PullServed:          r.Counter(n("mobicache_pull_served_total"), "requests satisfied by the pull backchannel"),
		PushUnits:           r.Counter(n("mobicache_push_units_total"), "broadcast-channel bandwidth spent (reports + aired slots)"),
		BudgetRemaining:     r.Gauge(n("mobicache_budget_remaining_units"), "download budget left after the last tick's policy spend"),
		TickBytes:           r.Histogram(n("mobicache_tick_download_units"), "data units downloaded per tick", TickBytesBounds),
		FetchLatency:        r.Histogram(n("mobicache_fetch_latency_ticks"), "simulated fetch latency per download (attempts + backoff)", FetchLatencyBounds),
		ClientScore:         r.Histogram(n("mobicache_client_score"), "per-request client recency score", ClientScoreBounds),
		SolveTime:           r.Histogram(n("mobicache_solve_seconds"), "wall-clock policy decision time per tick", SolveTimeBounds),
		Trace:               trace,
	}
}

// NewStationMetrics registers the station bundle on r with a decision
// trace ring of traceCap entries (<= 0 uses DefaultTraceCap).
func NewStationMetrics(r *Registry, traceCap int) *StationMetrics {
	return newStationMetrics(r, "", NewTraceRing(traceCap))
}

// ServeMetrics is the pre-registered bundle of the event-driven serve
// engine: window formation, the submit queue, and the cooperative
// peer-fetch path. Like StationMetrics, every field is registered up
// front so the per-window hot path touches only atomic words.
type ServeMetrics struct {
	Windows        *Counter // selection windows served
	DroppedWindows *Counter // windows whose tick failed; their requests got errors
	WindowRequests *Counter // requests closed into windows

	// Peer-fetch accounting. A fetch is one breaker-admitted attempt
	// against the owning peer; a hit delivered a cooperative copy, a
	// miss means the peer answered but lacks the object, a failure is a
	// transport/protocol error (these feed the peer's breaker), and a
	// short-circuit was refused outright by that open breaker.
	PeerFetches       *Counter
	PeerHits          *Counter
	PeerMisses        *Counter
	PeerFailures      *Counter
	PeerShortCircuits *Counter

	QueueDepth *Gauge // requests waiting in the submit queue

	WindowSize *Histogram // requests per closed window
	WindowWait *Histogram // per-request seconds from ingestion to service
}

// NewServeMetrics registers the serve bundle on r. Registration is
// idempotent by series name, so rebuilding an engine on a live registry
// (a daemon re-installing its catalog) keeps accumulating into the same
// series.
func NewServeMetrics(r *Registry) *ServeMetrics {
	return &ServeMetrics{
		Windows:           r.Counter("mobicache_serve_windows_total", "selection windows served by the serve engine"),
		DroppedWindows:    r.Counter("mobicache_serve_dropped_windows_total", "windows dropped because their tick failed"),
		WindowRequests:    r.Counter("mobicache_serve_window_requests_total", "requests closed into selection windows"),
		PeerFetches:       r.Counter("mobicache_peer_fetches_total", "cooperative peer-fetch attempts admitted by the breaker"),
		PeerHits:          r.Counter("mobicache_peer_hits_total", "peer fetches that delivered a cooperative copy"),
		PeerMisses:        r.Counter("mobicache_peer_misses_total", "peer fetches the owning peer answered without a copy"),
		PeerFailures:      r.Counter("mobicache_peer_failures_total", "peer fetches lost to transport or protocol errors"),
		PeerShortCircuits: r.Counter("mobicache_peer_short_circuits_total", "peer fetches refused outright by an open peer breaker"),
		QueueDepth:        r.Gauge("mobicache_serve_queue_depth", "requests waiting in the serve engine's submit queue"),
		WindowSize:        r.Histogram("mobicache_serve_window_size", "requests per closed selection window", WindowSizeBounds),
		WindowWait:        r.Histogram("mobicache_serve_window_wait_seconds", "seconds a request waited from ingestion to service", WindowWaitBounds),
	}
}

// MulticellMetrics extends the station bundle with the mobility and
// cooperation counters only a multi-cell deployment produces. Station is
// the aggregate across cells: its Ticks counter counts engine ticks (not
// cell-ticks) and its other series absorb per-cell shard growth each tick
// via a ShardMerger. Per-cell shards — the same series names with a
// {cell="N"} label — are registered on demand through CellShard.
type MulticellMetrics struct {
	Station            *StationMetrics
	Handoffs           *Counter // cell-to-cell client moves
	Drops              *Counter // client disconnections
	SharedCopies       *Counter // cooperative copies between base stations
	SharedCopyFailures *Counter // cooperative copies rejected by the local cache
	Connected          *Gauge   // currently connected clients

	// Cell-failure counters, produced only when a fault.CellSchedule is
	// installed: requests rerouted from a down cell to a live neighbour,
	// requests lost because no cell was live, and cell-ticks spent down.
	Reroutes      *Counter
	LostRequests  *Counter
	CellDownTicks *Counter
	CellsDown     *Gauge // cells currently inside an outage window

	reg *Registry

	mu    sync.Mutex
	cells []*StationMetrics
}

// NewMulticellMetrics registers the multi-cell bundle on r.
func NewMulticellMetrics(r *Registry, traceCap int) *MulticellMetrics {
	return &MulticellMetrics{
		Station:            NewStationMetrics(r, traceCap),
		Handoffs:           r.Counter("mobicache_handoffs_total", "cell-to-cell client moves"),
		Drops:              r.Counter("mobicache_drops_total", "client disconnections"),
		SharedCopies:       r.Counter("mobicache_shared_copies_total", "cooperative copies between base stations"),
		SharedCopyFailures: r.Counter("mobicache_shared_copy_failures_total", "cooperative copies the local cache rejected (e.g. bounded-cache insert failures)"),
		Connected:          r.Gauge("mobicache_connected_clients", "currently connected clients"),
		Reroutes:           r.Counter("mobicache_cell_reroutes_total", "requests rerouted from a down cell to a live neighbour"),
		LostRequests:       r.Counter("mobicache_cell_lost_requests_total", "requests lost because every cell was down"),
		CellDownTicks:      r.Counter("mobicache_cell_down_ticks_total", "cell-ticks spent inside a cell outage window"),
		CellsDown:          r.Gauge("mobicache_cells_down", "cells currently inside an outage window"),
		reg:                r,
	}
}

// CellShard returns cell's per-cell station bundle, registering it on
// first use: every series name gains a {cell="N"} label so scrapes see
// one family with one series per cell plus the unlabeled aggregate.
// Shards share the aggregate's decision-trace ring (it is mutex-guarded,
// so concurrently served cells may record into it). Registration is
// idempotent — rebuilding a system on the same registry reuses the
// existing series. It panics on a bundle not built by NewMulticellMetrics
// (no registry to register shards on) or a negative cell.
func (m *MulticellMetrics) CellShard(cell int) *StationMetrics {
	if m.reg == nil {
		panic("obs: CellShard on a MulticellMetrics not built by NewMulticellMetrics")
	}
	if cell < 0 {
		panic(fmt.Sprintf("obs: CellShard of negative cell %d", cell))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.cells) <= cell {
		m.cells = append(m.cells, nil)
	}
	if m.cells[cell] == nil {
		m.cells[cell] = newStationMetrics(m.reg, fmt.Sprintf(`{cell="%d"}`, cell), m.Station.Trace)
	}
	return m.cells[cell]
}

// histCursor remembers the last-merged state of one shard histogram:
// raw per-bucket counts plus the observation sum and count. delta is the
// scratch the per-merge growth is computed into.
type histCursor struct {
	counts []uint64
	delta  []uint64
	sum    float64
	n      uint64
}

// ShardMerger folds the growth of per-cell station shards into an
// aggregate bundle. Each Merge reads every shard, computes the delta
// since the previous Merge, and adds it to the aggregate's counters,
// histograms, and budget gauge — all against pre-sized cursors, so the
// steady-state merge allocates nothing.
//
// Two series are deliberately NOT merged: Ticks and ServerUpdates.
// Summing those across shards would turn the aggregate back into
// cell-tick counts (every cell ticks once per engine tick and observes
// the same master updates); the engine owns the aggregate's view of both
// and bumps them once per tick. The aggregate BudgetRemaining gauge is
// set to the sum of the shard gauges, or to UnlimitedBudget if any shard
// ran without a budget.
//
// Merge must not run concurrently with shard updates — the multi-cell
// engine calls it from the serial phase, after every cell's tick has
// completed.
type ShardMerger struct {
	agg    *StationMetrics
	shards []*StationMetrics

	// aggCounters[i] receives deltas of counters[s][i] for every shard s;
	// prev[s][i] is the value merged so far.
	aggCounters []*Counter
	counters    [][]*Counter
	prev        [][]uint64

	aggHists []*Histogram
	hists    [][]*Histogram
	cursors  [][]histCursor
}

// mergeableCounters lists the shard counters an aggregate absorbs, in a
// fixed order shared by shards and the aggregate. Ticks and ServerUpdates
// are excluded — see the ShardMerger contract.
func mergeableCounters(s *StationMetrics) []*Counter {
	return []*Counter{
		s.Requests, s.PolicyDownloads, s.MissDownloads, s.FailedDownloads,
		s.Retries, s.StaleFallbacks, s.DownloadUnits,
		s.BreakerTrips, s.BreakerProbes, s.ShortCircuits,
		s.ShedRequests, s.DegradedTicks, s.ShedTicks,
		s.SolverFullResolves, s.SolverWarmResolves,
		s.InvalidationReports, s.InvalidatedEntries, s.TerminalPurges,
		s.PushServed, s.PullServed, s.PushUnits,
	}
}

// mergeableHistograms lists the shard histograms an aggregate absorbs.
func mergeableHistograms(s *StationMetrics) []*Histogram {
	return []*Histogram{s.TickBytes, s.FetchLatency, s.ClientScore, s.SolveTime}
}

// NewShardMerger prepares a merger of the given shards into agg, folding
// only growth that happens after this call: the cursors start at the
// shards' current values, so rebuilding an engine against shards that
// already carry history (a daemon running simulation after simulation on
// one registry) does not re-add that history to the aggregate. Shards
// must have the same histogram bucket layouts as the aggregate (they do
// when both come from the same MulticellMetrics).
func NewShardMerger(agg *StationMetrics, shards []*StationMetrics) *ShardMerger {
	m := &ShardMerger{
		agg:         agg,
		shards:      shards,
		aggCounters: mergeableCounters(agg),
		aggHists:    mergeableHistograms(agg),
	}
	for _, sh := range shards {
		cs := mergeableCounters(sh)
		m.counters = append(m.counters, cs)
		prev := make([]uint64, len(cs))
		for i, c := range cs {
			prev[i] = c.Value()
		}
		m.prev = append(m.prev, prev)
		hs := mergeableHistograms(sh)
		m.hists = append(m.hists, hs)
		cur := make([]histCursor, len(hs))
		for i, h := range hs {
			buckets := len(h.Bounds()) + 1
			cur[i] = histCursor{counts: make([]uint64, buckets), delta: make([]uint64, buckets)}
			cur[i].sum, cur[i].n = h.SnapshotInto(cur[i].counts)
		}
		m.cursors = append(m.cursors, cur)
	}
	return m
}

// Merge folds every shard's growth since the last Merge into the
// aggregate bundle.
func (m *ShardMerger) Merge() {
	unlimited := false
	budget := 0.0
	for s := range m.shards {
		for i, c := range m.counters[s] {
			cur := c.Value()
			if d := cur - m.prev[s][i]; d != 0 {
				m.aggCounters[i].Add(d)
			}
			m.prev[s][i] = cur
		}
		for i, h := range m.hists[s] {
			cur := &m.cursors[s][i]
			sum, n := h.SnapshotInto(cur.delta)
			if n != cur.n || sum != cur.sum {
				for b := range cur.delta {
					cur.delta[b], cur.counts[b] = cur.delta[b]-cur.counts[b], cur.delta[b]
				}
				m.aggHists[i].AddRaw(cur.delta, sum-cur.sum, n-cur.n)
				cur.sum, cur.n = sum, n
			}
		}
		v := m.shards[s].BudgetRemaining.Value()
		if int64(v) == UnlimitedBudget {
			unlimited = true
		} else {
			budget += v
		}
	}
	if unlimited {
		m.agg.BudgetRemaining.Set(float64(UnlimitedBudget))
	} else {
		m.agg.BudgetRemaining.Set(budget)
	}
}
