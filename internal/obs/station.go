package obs

// Default bucket bounds for the station histograms. Exported so the
// daemon and tests can assert against the same layout.
var (
	// TickBytesBounds buckets the data units downloaded per tick.
	TickBytesBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	// FetchLatencyBounds buckets per-download fetch latency in simulated
	// ticks (attempts plus backoff).
	FetchLatencyBounds = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64}
	// ClientScoreBounds buckets the per-request client score in [0, 1].
	ClientScoreBounds = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1}
	// SolveTimeBounds buckets the wall-clock knapsack/policy solve time
	// per tick, in seconds.
	SolveTimeBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}
)

// StationMetrics is the pre-registered metric bundle a base station
// updates on its per-tick hot path. Every field is registered up front,
// so steady-state ticks touch only atomic words and the bounded trace
// ring — zero allocations.
type StationMetrics struct {
	Ticks           *Counter // ticks executed
	Requests        *Counter // client requests served
	ServerUpdates   *Counter // master updates observed
	PolicyDownloads *Counter // downloads chosen by the policy
	MissDownloads   *Counter // compulsory downloads for cache misses
	FailedDownloads *Counter // downloads abandoned after retries/timeout
	Retries         *Counter // extra fetch attempts beyond the first
	StaleFallbacks  *Counter // requests served stale because a refresh failed
	DownloadUnits   *Counter // data units fetched over the fixed network

	BudgetRemaining *Gauge // units left after the last tick's policy spend

	TickBytes    *Histogram // per-tick downloaded units
	FetchLatency *Histogram // per-download simulated fetch latency
	ClientScore  *Histogram // per-request client score
	SolveTime    *Histogram // per-tick policy decision wall time (seconds)

	// Trace records why each selection candidate was fetched or served
	// stale. Nil disables decision tracing.
	Trace *TraceRing
}

// NewStationMetrics registers the station bundle on r with a decision
// trace ring of traceCap entries (<= 0 uses DefaultTraceCap).
func NewStationMetrics(r *Registry, traceCap int) *StationMetrics {
	return &StationMetrics{
		Ticks:           r.Counter("mobicache_ticks_total", "simulated ticks executed"),
		Requests:        r.Counter("mobicache_requests_total", "client requests served"),
		ServerUpdates:   r.Counter("mobicache_server_updates_total", "master updates observed at the station"),
		PolicyDownloads: r.Counter("mobicache_policy_downloads_total", "downloads chosen by the refresh policy"),
		MissDownloads:   r.Counter("mobicache_miss_downloads_total", "compulsory downloads for cache misses"),
		FailedDownloads: r.Counter("mobicache_failed_downloads_total", "downloads abandoned after retries/timeout"),
		Retries:         r.Counter("mobicache_fetch_retries_total", "extra fetch attempts beyond the first"),
		StaleFallbacks:  r.Counter("mobicache_stale_fallbacks_total", "requests served a stale copy because the refresh failed"),
		DownloadUnits:   r.Counter("mobicache_download_units_total", "data units fetched over the fixed network"),
		BudgetRemaining: r.Gauge("mobicache_budget_remaining_units", "download budget left after the last tick's policy spend"),
		TickBytes:       r.Histogram("mobicache_tick_download_units", "data units downloaded per tick", TickBytesBounds),
		FetchLatency:    r.Histogram("mobicache_fetch_latency_ticks", "simulated fetch latency per download (attempts + backoff)", FetchLatencyBounds),
		ClientScore:     r.Histogram("mobicache_client_score", "per-request client recency score", ClientScoreBounds),
		SolveTime:       r.Histogram("mobicache_solve_seconds", "wall-clock policy decision time per tick", SolveTimeBounds),
		Trace:           NewTraceRing(traceCap),
	}
}

// MulticellMetrics extends the station bundle with the mobility and
// cooperation counters only a multi-cell deployment produces. All cells
// share one aggregate StationMetrics (the counters are atomic).
type MulticellMetrics struct {
	Station      *StationMetrics
	Handoffs     *Counter // cell-to-cell client moves
	Drops        *Counter // client disconnections
	SharedCopies *Counter // cooperative copies between base stations
	Connected    *Gauge   // currently connected clients
}

// NewMulticellMetrics registers the multi-cell bundle on r.
func NewMulticellMetrics(r *Registry, traceCap int) *MulticellMetrics {
	return &MulticellMetrics{
		Station:      NewStationMetrics(r, traceCap),
		Handoffs:     r.Counter("mobicache_handoffs_total", "cell-to-cell client moves"),
		Drops:        r.Counter("mobicache_drops_total", "client disconnections"),
		SharedCopies: r.Counter("mobicache_shared_copies_total", "cooperative copies between base stations"),
		Connected:    r.Gauge("mobicache_connected_clients", "currently connected clients"),
	}
}
