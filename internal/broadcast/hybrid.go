package broadcast

import (
	"container/list"
	"fmt"

	"mobicache/internal/catalog"
)

// Hybrid is the push/pull channel of the paper's related work [6]
// (Acharya, Franklin & Zdonik, "Balancing push and pull for data
// broadcast"): most slots follow the broadcast program, but every
// PullEvery-th slot serves the head of a pull queue fed by an explicit
// client backchannel. A client requests via the backchannel only when the
// broadcast would make it wait longer than Threshold slots.
type Hybrid struct {
	program    *Program
	pullEvery  int
	threshold  int
	queue      *list.List
	queued     map[catalog.ID]bool
	slot       int // absolute slot counter
	pullServed uint64
	pushServed uint64
}

// NewHybrid builds a hybrid channel. pullEvery = n dedicates every n-th
// slot to the pull queue (n >= 2); threshold is the wait (in slots) above
// which clients use the backchannel.
func NewHybrid(p *Program, pullEvery, threshold int) (*Hybrid, error) {
	if p == nil {
		return nil, fmt.Errorf("broadcast: nil program")
	}
	if pullEvery < 2 {
		return nil, fmt.Errorf("broadcast: pullEvery %d must be >= 2", pullEvery)
	}
	if threshold < 0 {
		return nil, fmt.Errorf("broadcast: negative threshold %d", threshold)
	}
	return &Hybrid{
		program:   p,
		pullEvery: pullEvery,
		threshold: threshold,
		queue:     list.New(),
		queued:    make(map[catalog.ID]bool),
	}, nil
}

// Slot returns the absolute slot counter (slots aired so far).
func (h *Hybrid) Slot() int { return h.slot }

// QueueLen returns the number of distinct objects in the pull queue.
func (h *Hybrid) QueueLen() int { return h.queue.Len() }

// PullServed and PushServed count requests satisfied by each path.
func (h *Hybrid) PullServed() uint64 { return h.pullServed }

// PushServed counts requests satisfied by the broadcast schedule.
func (h *Hybrid) PushServed() uint64 { return h.pushServed }

// programPosition maps the absolute slot counter to a position in the
// underlying program, skipping pull slots.
func (h *Hybrid) isPullSlot(abs int) bool {
	return abs%h.pullEvery == h.pullEvery-1
}

// Request registers a client request arriving at the current slot and
// returns the number of slots the client will wait until its object airs.
// The decision rule of [6]: if the broadcast delivers the object within
// threshold slots, wait for it (push); otherwise enqueue it on the
// backchannel (pull), where it is served FIFO in the dedicated slots.
func (h *Hybrid) Request(id catalog.ID) int {
	pushWait := h.pushWait(id)
	if pushWait >= 0 && pushWait <= h.threshold {
		h.pushServed++
		return pushWait
	}
	pullWait := h.pullWait(id)
	if pushWait >= 0 && pushWait < pullWait {
		h.pushServed++
		return pushWait
	}
	if !h.queued[id] {
		h.queue.PushBack(id)
		h.queued[id] = true
	}
	h.pullServed++
	return pullWait
}

// pushWait computes how many slots until the broadcast airs id, starting
// from the current absolute slot and accounting for interleaved pull
// slots.
func (h *Hybrid) pushWait(id catalog.ID) int {
	if !h.program.Carries(id) {
		return -1
	}
	s := h.slot
	// Program position airing at (or, from a pull slot, right after) s.
	q := s - s/h.pullEvery
	if h.isPullSlot(s) {
		q = (s + 1) - (s+1)/h.pullEvery
	}
	d := h.program.NextOccurrence(id, q)
	// Program position p airs at absolute slot p + p/(pullEvery-1): each
	// run of pullEvery-1 program slots is followed by one pull slot.
	target := q + d
	absTarget := target + target/(h.pullEvery-1)
	return absTarget - s
}

// pullWait computes how many slots until the pull queue would deliver id
// if enqueued now (position in queue times the pull-slot spacing).
func (h *Hybrid) pullWait(id catalog.ID) int {
	pos := h.queue.Len() // 0-based position if appended now
	if h.queued[id] {
		pos = 0
		for e := h.queue.Front(); e != nil; e = e.Next() {
			if e.Value.(catalog.ID) == id {
				break
			}
			pos++
		}
	}
	// The (pos+1)-th upcoming pull slot delivers it.
	need := pos + 1
	// Slots until the need-th pull slot from h.slot.
	untilFirst := (h.pullEvery - 1) - (h.slot % h.pullEvery)
	if untilFirst < 0 {
		untilFirst += h.pullEvery
	}
	return untilFirst + (need-1)*h.pullEvery
}

// Air advances one slot, returning the object aired (or -1 for an idle
// pull slot with an empty queue).
func (h *Hybrid) Air() catalog.ID {
	defer func() { h.slot++ }()
	if h.isPullSlot(h.slot) {
		front := h.queue.Front()
		if front == nil {
			return -1
		}
		id := front.Value.(catalog.ID)
		h.queue.Remove(front)
		delete(h.queued, id)
		return id
	}
	progPos := h.slot - (h.slot / h.pullEvery)
	return h.program.Slots[progPos%h.program.Len()]
}
