package broadcast

import (
	"math"
	"strings"
	"testing"

	"mobicache/internal/catalog"
	"mobicache/internal/rng"
)

// TestHybridPredictedWaitExactDelivery cross-checks Hybrid.Request's
// promised wait against actual delivery: for swept (program, pullEvery,
// threshold, start slot, queue depth) grids, the requested object must
// air exactly `wait` slots after the request — not one early, not one
// late. This pins the pull-slot interleaving arithmetic (pushWait's
// program-position mapping and pullWait's pull-slot spacing) far tighter
// than the older upper-bound checks.
func TestHybridPredictedWaitExactDelivery(t *testing.T) {
	cat := unitCatalog(28)
	ids := cat.IDs()
	multi, err := MultiDisk([]Disk{
		{Objects: ids[:4], Freq: 4},
		{Objects: ids[4:12], Freq: 2},
		{Objects: ids[12:24], Freq: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewProgram(ids[:24])
	if err != nil {
		t.Fatal(err)
	}
	progs := []struct {
		name string
		p    *Program
	}{{"flat", flat}, {"multidisk", multi}}

	for _, pc := range progs {
		for _, pullEvery := range []int{2, 3, 5} {
			for _, threshold := range []int{0, 3, 1 << 20} {
				// Start offsets cover every pull-phase position plus the
				// major-cycle boundary of the interleaved schedule (program
				// position L airs at absolute slot L + L/(pullEvery-1)).
				cycleAbs := pc.p.Len() + pc.p.Len()/(pullEvery-1)
				var starts []int
				for s := 0; s <= 3*pullEvery; s++ {
					starts = append(starts, s)
				}
				for s := cycleAbs - 2; s <= cycleAbs+2; s++ {
					if s > 3*pullEvery {
						starts = append(starts, s)
					}
				}
				for _, start := range starts {
					for _, depth := range []int{0, 2} {
						// ids[24:] are never carried: ids[24], ids[25] seed
						// the pull queue, ids[27] is a measured always-pull
						// target.
						targets := append([]catalog.ID{}, ids[:24]...)
						targets = append(targets, ids[27])
						for _, id := range targets {
							h, err := NewHybrid(pc.p, pullEvery, threshold)
							if err != nil {
								t.Fatal(err)
							}
							for i := 0; i < start; i++ {
								h.Air()
							}
							for j := 0; j < depth; j++ {
								h.Request(ids[24+j])
							}
							w := h.Request(id)
							if w < 0 {
								t.Fatalf("%s pe=%d thr=%d start=%d depth=%d obj=%d: negative wait %d",
									pc.name, pullEvery, threshold, start, depth, id, w)
							}
							for i := 0; i < w; i++ {
								if h.Air() == id {
									t.Fatalf("%s pe=%d thr=%d start=%d depth=%d: object %d aired %d slots early (promise %d)",
										pc.name, pullEvery, threshold, start, depth, id, w-i, w)
								}
							}
							if got := h.Air(); got != id {
								t.Fatalf("%s pe=%d thr=%d start=%d depth=%d obj=%d: promised wait %d but slot aired %d",
									pc.name, pullEvery, threshold, start, depth, id, w, got)
							}
						}
					}
				}
			}
		}
	}
}

// TestHybridRepeatRequestAccounting pins the served-counter semantics for
// repeat requests: PullServed/PushServed count REQUESTS satisfied by each
// path, not air slots, so a second request for an already-queued object
// shares the queued broadcast slot (queue length stays 1) while the pull
// counter advances.
func TestHybridRepeatRequestAccounting(t *testing.T) {
	p := Flat(unitCatalog(10))

	h, err := NewHybrid(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	w1 := h.Request(9)
	w2 := h.Request(9)
	if w1 != w2 {
		t.Fatalf("repeat request with no slots elapsed promised %d then %d", w1, w2)
	}
	if h.PullServed() != 2 || h.PushServed() != 0 {
		t.Fatalf("pull/push served = %d/%d, want 2/0 (requests, not airings)", h.PullServed(), h.PushServed())
	}
	if h.QueueLen() != 1 {
		t.Fatalf("queue length = %d, want 1 (shared slot)", h.QueueLen())
	}
	// One pull slot drains the shared entry for both outstanding clients.
	for i := 0; i <= w1; i++ {
		h.Air()
	}
	if h.QueueLen() != 0 {
		t.Fatal("shared queue entry not drained by one pull slot")
	}
	if h.PullServed() != 2 {
		t.Fatalf("airing changed pullServed to %d", h.PullServed())
	}

	// Push-path repeats never touch the queue.
	h2, err := NewHybrid(p, 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	h2.Request(3)
	h2.Request(3)
	if h2.PushServed() != 2 || h2.PullServed() != 0 || h2.QueueLen() != 0 {
		t.Fatalf("push repeats: push/pull/queue = %d/%d/%d, want 2/0/0",
			h2.PushServed(), h2.PullServed(), h2.QueueLen())
	}
}

// TestExpectedWaitMatchesSimulationFlat complements the multi-disk
// simulation cross-check with the flat program under uniform access,
// where the analytic value is exactly (N-1)/2.
func TestExpectedWaitMatchesSimulationFlat(t *testing.T) {
	const n = 24
	p := Flat(unitCatalog(n))
	weights := rng.Uniform.Weights(n)
	analytic := p.MeanExpectedWait(weights)
	if want := float64(n-1) / 2; math.Abs(analytic-want) > 1e-9 {
		t.Fatalf("flat analytic wait %v, want %v", analytic, want)
	}
	simulated := p.SimulateWaits(rng.New(11), rng.Uniform.NewSampler(n), p.Slots, 200000)
	if math.Abs(analytic-simulated) > 0.02*analytic {
		t.Fatalf("analytic wait %v vs simulated %v", analytic, simulated)
	}
}

// TestMultiDiskSpacingInvariant checks the chunk-interleaving guarantee:
// every object on a frequency-f disk appears exactly f times per major
// cycle, equally spaced (gap = cycle length / f, including the
// wrap-around gap).
func TestMultiDiskSpacingInvariant(t *testing.T) {
	cases := []struct {
		name  string
		sizes []int
		freqs []int
	}{
		{"4:2:1", []int{4, 8, 12}, []int{4, 2, 1}},
		{"3:1", []int{5, 9}, []int{3, 1}},
		{"6:3:2", []int{2, 4, 9}, []int{6, 3, 2}},
		{"single", []int{7}, []int{1}},
	}
	for _, tc := range cases {
		total := 0
		for _, s := range tc.sizes {
			total += s
		}
		ids := unitCatalog(total).IDs()
		var disks []Disk
		freqOf := make(map[catalog.ID]int)
		at := 0
		for i, s := range tc.sizes {
			disks = append(disks, Disk{Objects: ids[at : at+s], Freq: tc.freqs[i]})
			for _, id := range ids[at : at+s] {
				freqOf[id] = tc.freqs[i]
			}
			at += s
		}
		p, err := MultiDisk(disks)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		occ := make(map[catalog.ID][]int)
		for slot, id := range p.Slots {
			occ[id] = append(occ[id], slot)
		}
		for _, id := range ids {
			f := freqOf[id]
			slots := occ[id]
			if len(slots) != f {
				t.Fatalf("%s: object %d aired %d times per major cycle, want %d", tc.name, id, len(slots), f)
			}
			if p.Len()%f != 0 {
				t.Fatalf("%s: cycle length %d not divisible by frequency %d", tc.name, p.Len(), f)
			}
			gap := p.Len() / f
			for i, s := range slots {
				prev := slots[(i+f-1)%f]
				g := s - prev
				if g <= 0 {
					g += p.Len()
				}
				if g != gap {
					t.Fatalf("%s: object %d occurrences %v unevenly spaced (gap %d, want %d)",
						tc.name, id, slots, g, gap)
				}
			}
		}
	}
}

// TestMultiDiskChunkRejectionTable sweeps non-divisible chunkings: a
// disk whose size does not divide into its L/freq chunks must be
// rejected, naming the offending disk.
func TestMultiDiskChunkRejectionTable(t *testing.T) {
	cases := []struct {
		name    string
		sizes   []int
		freqs   []int
		badDisk int // -1 = valid
	}{
		{"3 into 2 chunks", []int{3, 2}, []int{1, 2}, 0},
		{"5 into 2 chunks", []int{4, 5}, []int{2, 1}, 1},
		{"7 into 4 chunks", []int{4, 7}, []int{4, 1}, 1},
		{"5 into 4 chunks, third disk", []int{2, 4, 5}, []int{4, 2, 1}, 2},
		{"valid 4:2:1", []int{1, 2, 4}, []int{4, 2, 1}, -1},
		{"valid coprime 3:2", []int{2, 3}, []int{3, 2}, -1},
	}
	for _, tc := range cases {
		total := 0
		for _, s := range tc.sizes {
			total += s
		}
		ids := unitCatalog(total).IDs()
		var disks []Disk
		at := 0
		for i, s := range tc.sizes {
			disks = append(disks, Disk{Objects: ids[at : at+s], Freq: tc.freqs[i]})
			at += s
		}
		p, err := MultiDisk(disks)
		if tc.badDisk < 0 {
			if err != nil {
				t.Fatalf("%s: valid chunking rejected: %v", tc.name, err)
			}
			if p.Len() == 0 {
				t.Fatalf("%s: empty program", tc.name)
			}
			continue
		}
		if err == nil {
			t.Fatalf("%s: indivisible chunking accepted", tc.name)
		}
		if want := "disk " + string(rune('0'+tc.badDisk)); !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: error %q does not name %s", tc.name, err, want)
		}
	}
}

// FuzzNextOccurrence fuzzes NewProgram and NextOccurrence around cycle
// boundaries: a program built from arbitrary slot bytes must locate, for
// any (possibly negative or cycle-spanning) position, the genuinely
// nearest occurrence of every carried object, and report -1 for
// uncarried ones.
func FuzzNextOccurrence(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2}, int32(3))
	f.Add([]byte{5}, int32(-7))
	f.Add([]byte{}, int32(0))
	f.Add([]byte{1, 1, 1, 2, 3, 2}, int32(1<<30))
	f.Fuzz(func(t *testing.T, raw []byte, from int32) {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		slots := make([]catalog.ID, len(raw))
		for i, b := range raw {
			slots[i] = catalog.ID(b % 8)
		}
		p, err := NewProgram(slots)
		if len(slots) == 0 {
			if err == nil {
				t.Fatal("empty program accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("program rejected: %v", err)
		}
		n := p.Len()
		pos := ((int(from) % n) + n) % n
		seen := make(map[catalog.ID]bool)
		for _, id := range slots {
			seen[id] = true
		}
		for id := catalog.ID(0); id < 8; id++ {
			d := p.NextOccurrence(id, int(from))
			if !seen[id] {
				if d != -1 {
					t.Fatalf("uncarried object %d: NextOccurrence = %d, want -1", id, d)
				}
				continue
			}
			if d < 0 || d >= n {
				t.Fatalf("object %d from %d: wait %d out of range [0,%d)", id, from, d, n)
			}
			if p.Slots[(pos+d)%n] != id {
				t.Fatalf("object %d from %d: slot %d carries %d", id, from, (pos+d)%n, p.Slots[(pos+d)%n])
			}
			for j := 0; j < d; j++ {
				if p.Slots[(pos+j)%n] == id {
					t.Fatalf("object %d from %d: wait %d misses earlier occurrence at +%d", id, from, d, j)
				}
			}
		}
	})
}
