package broadcast

import (
	"testing"

	"mobicache/internal/catalog"
)

func TestNewHybridValidation(t *testing.T) {
	p := Flat(unitCatalog(4))
	if _, err := NewHybrid(nil, 2, 1); err == nil {
		t.Fatal("nil program accepted")
	}
	if _, err := NewHybrid(p, 1, 1); err == nil {
		t.Fatal("pullEvery < 2 accepted")
	}
	if _, err := NewHybrid(p, 2, -1); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestHybridAirInterleavesPullSlots(t *testing.T) {
	p := Flat(unitCatalog(3)) // program: 0 1 2
	h, err := NewHybrid(p, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Slots: prog, prog, pull, prog, prog, pull, ...
	var aired []catalog.ID
	for i := 0; i < 6; i++ {
		aired = append(aired, h.Air())
	}
	want := []catalog.ID{0, 1, -1, 2, 0, -1} // empty pull queue airs -1
	for i := range want {
		if aired[i] != want[i] {
			t.Fatalf("aired = %v, want %v", aired, want)
		}
	}
	if h.Slot() != 6 {
		t.Fatalf("slot counter = %d", h.Slot())
	}
}

func TestHybridPullPath(t *testing.T) {
	// 10-object flat program, pull every 2nd slot, threshold 0: every
	// request goes to the backchannel unless the object airs immediately.
	p := Flat(unitCatalog(10))
	h, err := NewHybrid(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	wait := h.Request(7) // program would take a while; pulled instead
	if wait < 0 {
		t.Fatalf("pull wait = %d", wait)
	}
	if h.PullServed() != 1 {
		t.Fatalf("pull served = %d", h.PullServed())
	}
	if h.QueueLen() != 1 {
		t.Fatalf("queue length = %d", h.QueueLen())
	}
	// Air until the pull slot: the pulled object must appear within
	// `wait+1` slots.
	served := false
	for i := 0; i <= wait; i++ {
		if h.Air() == 7 {
			served = true
		}
	}
	if !served {
		t.Fatalf("pulled object not aired within promised wait %d", wait)
	}
	if h.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestHybridPushPathWithinThreshold(t *testing.T) {
	p := Flat(unitCatalog(10))
	h, _ := NewHybrid(p, 5, 20) // generous threshold: everything pushes
	w := h.Request(3)
	if h.PushServed() != 1 || h.PullServed() != 0 {
		t.Fatalf("push/pull served = %d/%d", h.PushServed(), h.PullServed())
	}
	// The promise must hold: object 3 airs within w+1 slots.
	served := false
	for i := 0; i <= w; i++ {
		if h.Air() == 3 {
			served = true
		}
	}
	if !served {
		t.Fatalf("pushed object not aired within promised wait %d", w)
	}
}

func TestHybridDuplicateRequestsShareSlot(t *testing.T) {
	p := Flat(unitCatalog(10))
	h, _ := NewHybrid(p, 2, 0)
	w1 := h.Request(9)
	w2 := h.Request(9) // same object: shares the queued broadcast
	if h.QueueLen() != 1 {
		t.Fatalf("queue holds %d entries for one object", h.QueueLen())
	}
	if w2 > w1 {
		t.Fatalf("duplicate request waits longer: %d > %d", w2, w1)
	}
}

func TestHybridWaitPromisesHold(t *testing.T) {
	// Property-style: across many random requests, the promised wait is
	// always honored (the object airs no later than promised).
	p := Flat(unitCatalog(20))
	h, _ := NewHybrid(p, 4, 3)
	type due struct {
		id       catalog.ID
		deadline int
	}
	var pendingReqs []due
	served := map[int]bool{}
	for step := 0; step < 400; step++ {
		if step%3 == 0 {
			id := catalog.ID(step * 7 % 20)
			w := h.Request(id)
			pendingReqs = append(pendingReqs, due{id: id, deadline: h.Slot() + w})
		}
		aired := h.Air()
		for i := range pendingReqs {
			if !served[i] && pendingReqs[i].id == aired && h.Slot()-1 <= pendingReqs[i].deadline {
				served[i] = true
			}
		}
		for i, d := range pendingReqs {
			if !served[i] && h.Slot() > d.deadline {
				t.Fatalf("request %d for object %d missed its promised deadline %d (slot %d)",
					i, d.id, d.deadline, h.Slot())
			}
		}
	}
}
