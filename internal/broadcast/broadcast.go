// Package broadcast implements the data-dissemination baseline the paper
// positions itself against (its related work [4-6], Acharya, Franklin &
// Zdonik's Broadcast Disks): a base station pushes objects on a broadcast
// schedule, and clients wait for the object they want to come around.
//
// Three schemes are provided:
//
//   - a flat program (every object once per cycle),
//   - multi-disk programs (hot objects broadcast more frequently, built
//     with the chunk-interleaving algorithm of the SIGMOD'95 paper),
//   - a hybrid push/pull channel with a pull backchannel ([6]): a slice of
//     the broadcast slots is reserved for explicitly requested objects.
//
// The package computes exact expected waits from the program geometry and
// simulates request streams against it, which is what the comparison
// experiment against the paper's pull-based caching uses.
package broadcast

import (
	"fmt"
	"sort"

	"mobicache/internal/catalog"
	"mobicache/internal/rng"
)

// Program is a fixed cyclic broadcast schedule: slot i of a cycle carries
// Slots[i].
type Program struct {
	Slots []catalog.ID
	// occurrences[id] lists the ascending slot indexes carrying id.
	occurrences map[catalog.ID][]int
}

// NewProgram builds a Program from an explicit slot sequence.
func NewProgram(slots []catalog.ID) (*Program, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("broadcast: empty program")
	}
	p := &Program{
		Slots:       append([]catalog.ID(nil), slots...),
		occurrences: make(map[catalog.ID][]int),
	}
	for i, id := range p.Slots {
		p.occurrences[id] = append(p.occurrences[id], i)
	}
	return p, nil
}

// Flat builds the flat program: each object exactly once per cycle, in ID
// order.
func Flat(cat *catalog.Catalog) *Program {
	p, err := NewProgram(cat.IDs())
	if err != nil {
		// A catalog is never empty.
		panic(err)
	}
	return p
}

// Disk is one broadcast disk: a set of objects spun at a relative
// frequency (higher = broadcast more often).
type Disk struct {
	Objects []catalog.ID
	Freq    int
}

// MultiDisk builds a broadcast-disk program with the chunk-interleaving
// algorithm: with L = lcm(frequencies), disk i is split into L/freq_i
// chunks and minor cycle j carries chunk j mod chunks_i of every disk.
// Objects on a disk of frequency f appear f times per major cycle,
// equally spaced.
func MultiDisk(disks []Disk) (*Program, error) {
	if len(disks) == 0 {
		return nil, fmt.Errorf("broadcast: no disks")
	}
	L := 1
	for i, d := range disks {
		if d.Freq <= 0 {
			return nil, fmt.Errorf("broadcast: disk %d frequency %d must be positive", i, d.Freq)
		}
		if len(d.Objects) == 0 {
			return nil, fmt.Errorf("broadcast: disk %d is empty", i)
		}
		L = lcm(L, d.Freq)
	}
	type chunked struct {
		chunks [][]catalog.ID
	}
	var cds []chunked
	for i, d := range disks {
		numChunks := L / d.Freq
		if len(d.Objects)%numChunks != 0 {
			return nil, fmt.Errorf(
				"broadcast: disk %d has %d objects, not divisible into %d chunks (pad the disk)",
				i, len(d.Objects), numChunks)
		}
		per := len(d.Objects) / numChunks
		var cd chunked
		for c := 0; c < numChunks; c++ {
			cd.chunks = append(cd.chunks, d.Objects[c*per:(c+1)*per])
		}
		cds = append(cds, cd)
	}
	var slots []catalog.ID
	for j := 0; j < L; j++ {
		for _, cd := range cds {
			slots = append(slots, cd.chunks[j%len(cd.chunks)]...)
		}
	}
	return NewProgram(slots)
}

// Len returns the number of slots in one major cycle.
func (p *Program) Len() int { return len(p.Slots) }

// Carries reports whether the program ever broadcasts id.
func (p *Program) Carries(id catalog.ID) bool {
	return len(p.occurrences[id]) > 0
}

// NextOccurrence returns the number of slots from position `from` (0 =
// the slot about to air) until id airs, or -1 if the program never
// carries it.
func (p *Program) NextOccurrence(id catalog.ID, from int) int {
	occ := p.occurrences[id]
	if len(occ) == 0 {
		return -1
	}
	n := len(p.Slots)
	pos := ((from % n) + n) % n
	i := sort.SearchInts(occ, pos)
	if i < len(occ) {
		return occ[i] - pos
	}
	return occ[0] + n - pos
}

// ExpectedWait returns the mean number of slots a client arriving at a
// uniformly random instant waits for id (half-slot granularity ignored:
// arrival is at a slot boundary), or -1 if the program never carries it.
// For occurrences with gaps g_k summing to N, the exact value is
// sum(g_k * (g_k - 1) / 2) / N.
func (p *Program) ExpectedWait(id catalog.ID) float64 {
	occ := p.occurrences[id]
	if len(occ) == 0 {
		return -1
	}
	n := len(p.Slots)
	total := 0.0
	for i, slot := range occ {
		var gap int
		if i == 0 {
			gap = slot + n - occ[len(occ)-1]
		} else {
			gap = slot - occ[i-1]
		}
		total += float64(gap) * float64(gap-1) / 2
	}
	return total / float64(n)
}

// MeanExpectedWait returns the request-weighted mean expected wait for a
// popularity weight vector over object IDs 0..len(weights)-1. Objects the
// program does not carry contribute the full cycle length (they never
// arrive — the value is a pessimistic floor rather than infinity).
func (p *Program) MeanExpectedWait(weights []float64) float64 {
	var sum, wsum float64
	for id, w := range weights {
		if w <= 0 {
			continue
		}
		wait := p.ExpectedWait(catalog.ID(id))
		if wait < 0 {
			wait = float64(p.Len())
		}
		sum += w * wait
		wsum += w
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// SimulateWaits draws n requests from the popularity sampler and measures
// each one's wait at a uniformly random cycle position, returning the
// mean. This validates ExpectedWait and drives the comparison study.
func (p *Program) SimulateWaits(src *rng.Source, sampler *rng.Alias, rank []catalog.ID, n int) float64 {
	if n <= 0 {
		return 0
	}
	total := 0.0
	for i := 0; i < n; i++ {
		id := rank[sampler.Sample(src)]
		pos := src.Intn(p.Len())
		w := p.NextOccurrence(id, pos)
		if w < 0 {
			w = p.Len()
		}
		total += float64(w)
	}
	return total / float64(n)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int {
	return a / gcd(a, b) * b
}
