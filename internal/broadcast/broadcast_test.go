package broadcast

import (
	"math"
	"testing"

	"mobicache/internal/catalog"
	"mobicache/internal/rng"
)

func unitCatalog(n int) *catalog.Catalog {
	c, err := catalog.Uniform(n, 1)
	if err != nil {
		panic(err)
	}
	return c
}

func TestNewProgramEmpty(t *testing.T) {
	if _, err := NewProgram(nil); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestFlatProgram(t *testing.T) {
	p := Flat(unitCatalog(5))
	if p.Len() != 5 {
		t.Fatalf("flat program length = %d", p.Len())
	}
	for id := catalog.ID(0); id < 5; id++ {
		if !p.Carries(id) {
			t.Fatalf("flat program misses %d", id)
		}
	}
	if p.Carries(99) {
		t.Fatal("program carries unknown object")
	}
}

func TestNextOccurrence(t *testing.T) {
	p, err := NewProgram([]catalog.ID{0, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		id   catalog.ID
		from int
		want int
	}{
		{0, 0, 0}, // airs immediately
		{0, 1, 1}, // next at slot 2
		{0, 3, 1}, // wraps to slot 0
		{1, 2, 3}, // wraps: slots 2,3,0 then 1
		{2, 0, 3},
		{2, 3, 0},
		{0, 4, 0},  // from == len wraps to 0
		{0, -1, 1}, // negative positions normalize
	}
	for _, c := range cases {
		if got := p.NextOccurrence(c.id, c.from); got != c.want {
			t.Fatalf("NextOccurrence(%d, %d) = %d, want %d", c.id, c.from, got, c.want)
		}
	}
	if got := p.NextOccurrence(9, 0); got != -1 {
		t.Fatalf("NextOccurrence(missing) = %d", got)
	}
}

func TestExpectedWaitFlat(t *testing.T) {
	p := Flat(unitCatalog(10))
	// One occurrence in a 10-slot cycle: gaps of 10, expected wait
	// 10*9/2/10 = 4.5.
	for id := catalog.ID(0); id < 10; id++ {
		if got := p.ExpectedWait(id); math.Abs(got-4.5) > 1e-12 {
			t.Fatalf("ExpectedWait(%d) = %v, want 4.5", id, got)
		}
	}
	if got := p.ExpectedWait(99); got != -1 {
		t.Fatalf("ExpectedWait(missing) = %v", got)
	}
}

func TestExpectedWaitTwiceBroadcast(t *testing.T) {
	// Object 0 at slots 0 and 2 of a 4-slot cycle: gaps 2,2 → wait
	// (2*1/2 + 2*1/2)/4 = 0.5.
	p, _ := NewProgram([]catalog.ID{0, 1, 0, 2})
	if got := p.ExpectedWait(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ExpectedWait = %v, want 0.5", got)
	}
}

func TestExpectedWaitMatchesSimulation(t *testing.T) {
	cat := unitCatalog(20)
	disks := []Disk{
		{Objects: cat.IDs()[:4], Freq: 4},
		{Objects: cat.IDs()[4:12], Freq: 2},
		{Objects: cat.IDs()[12:], Freq: 1},
	}
	p, err := MultiDisk(disks)
	if err != nil {
		t.Fatal(err)
	}
	weights := rng.Zipf.Weights(20)
	analytic := p.MeanExpectedWait(weights)
	sampler := rng.Zipf.NewSampler(20)
	src := rng.New(5)
	simulated := p.SimulateWaits(src, sampler, cat.IDs(), 200000)
	if math.Abs(analytic-simulated) > 0.05*analytic {
		t.Fatalf("analytic wait %v vs simulated %v", analytic, simulated)
	}
}

func TestMultiDiskFrequencies(t *testing.T) {
	cat := unitCatalog(6)
	p, err := MultiDisk([]Disk{
		{Objects: cat.IDs()[:2], Freq: 2}, // hot: 2x per major cycle
		{Objects: cat.IDs()[2:], Freq: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[catalog.ID]int{}
	for _, id := range p.Slots {
		counts[id]++
	}
	for _, id := range cat.IDs()[:2] {
		if counts[id] != 2 {
			t.Fatalf("hot object %d aired %d times, want 2", id, counts[id])
		}
	}
	for _, id := range cat.IDs()[2:] {
		if counts[id] != 1 {
			t.Fatalf("cold object %d aired %d times, want 1", id, counts[id])
		}
	}
	// Hot objects wait less than cold objects.
	if p.ExpectedWait(0) >= p.ExpectedWait(3) {
		t.Fatalf("hot wait %v not below cold wait %v", p.ExpectedWait(0), p.ExpectedWait(3))
	}
}

func TestMultiDiskValidation(t *testing.T) {
	cat := unitCatalog(4)
	if _, err := MultiDisk(nil); err == nil {
		t.Fatal("no disks accepted")
	}
	if _, err := MultiDisk([]Disk{{Objects: cat.IDs(), Freq: 0}}); err == nil {
		t.Fatal("zero frequency accepted")
	}
	if _, err := MultiDisk([]Disk{{Objects: nil, Freq: 1}}); err == nil {
		t.Fatal("empty disk accepted")
	}
	// 3 objects cannot split into 2 chunks.
	if _, err := MultiDisk([]Disk{
		{Objects: cat.IDs()[:3], Freq: 1},
		{Objects: cat.IDs()[3:], Freq: 2},
	}); err == nil {
		t.Fatal("indivisible chunking accepted")
	}
}

func TestMultiDiskBeatsFlatUnderSkew(t *testing.T) {
	cat := unitCatalog(40)
	flat := Flat(cat)
	ids := cat.IDs()
	multi, err := MultiDisk([]Disk{
		{Objects: ids[:4], Freq: 4},
		{Objects: ids[4:12], Freq: 2},
		{Objects: ids[12:40], Freq: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	weights := rng.Zipf.Weights(40)
	if multi.MeanExpectedWait(weights) >= flat.MeanExpectedWait(weights) {
		t.Fatalf("multi-disk wait %v not below flat wait %v under zipf",
			multi.MeanExpectedWait(weights), flat.MeanExpectedWait(weights))
	}
	// Under uniform access flat is (weakly) better: multi-disk trades
	// cold-object latency for hot-object latency.
	uw := rng.Uniform.Weights(40)
	if multi.MeanExpectedWait(uw) < flat.MeanExpectedWait(uw)-1e-9 {
		t.Fatalf("multi-disk should not beat flat under uniform access")
	}
}

func TestMeanExpectedWaitEdge(t *testing.T) {
	p := Flat(unitCatalog(3))
	if got := p.MeanExpectedWait(nil); got != 0 {
		t.Fatalf("empty weights wait = %v", got)
	}
	if got := p.MeanExpectedWait([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("zero weights wait = %v", got)
	}
	// Weights longer than the program: missing objects cost a full cycle.
	w := p.MeanExpectedWait([]float64{0, 0, 0, 1})
	if w != 3 {
		t.Fatalf("missing-object wait = %v, want cycle length 3", w)
	}
}

func TestSimulateWaitsZero(t *testing.T) {
	p := Flat(unitCatalog(3))
	if got := p.SimulateWaits(rng.New(1), rng.Uniform.NewSampler(3), unitCatalog(3).IDs(), 0); got != 0 {
		t.Fatalf("zero draws wait = %v", got)
	}
}
