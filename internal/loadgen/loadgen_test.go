package loadgen

import (
	"math"
	"testing"
	"time"
)

func TestNewStreamValidates(t *testing.T) {
	cases := []StreamConfig{
		{Objects: 0},
		{Objects: -4},
		{Objects: 10, ZipfS: -1},
		{Objects: 10, TargetLo: -0.1, TargetHi: 0.5},
		{Objects: 10, TargetLo: 0.5, TargetHi: 1.5},
		{Objects: 10, TargetLo: 0.9, TargetHi: 0.2},
	}
	for i, cfg := range cases {
		if _, err := NewStream(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

// TestStreamDeterministic pins that two streams with the same seed emit
// identical request sequences — the property that makes archived load
// runs replayable.
func TestStreamDeterministic(t *testing.T) {
	cfg := StreamConfig{Objects: 100, ZipfS: 0.9, Clients: 7, TargetLo: 0.3, TargetHi: 1, Seed: 42}
	a, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, ra, rb)
		}
		if ra.Object < 0 || int(ra.Object) >= 100 {
			t.Fatalf("draw %d: object %d outside the catalog", i, ra.Object)
		}
		if ra.Target < 0.3 || ra.Target > 1 {
			t.Fatalf("draw %d: target %v outside [0.3, 1]", i, ra.Target)
		}
		if ra.Client != i%7 {
			t.Fatalf("draw %d: client %d, want round-robin %d", i, ra.Client, i%7)
		}
	}
}

// TestStreamZipfHistogram pins the seeded zipf draw against a recorded
// histogram prefix: the most popular objects must dominate, and the
// exact counts must never drift (any change to the alias table, weight
// normalization, or RNG stepping shows up here).
func TestStreamZipfHistogram(t *testing.T) {
	s, err := NewStream(StreamConfig{Objects: 50, ZipfS: 1.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 50)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[s.Next().Object]++
	}
	// Rank ordering: object 0 is the most popular, and the head outdraws
	// the tail decisively under s=1.1.
	if counts[0] <= counts[10] || counts[0] <= counts[49] {
		t.Fatalf("zipf head does not dominate: counts[0]=%d counts[10]=%d counts[49]=%d",
			counts[0], counts[10], counts[49])
	}
	head := counts[0] + counts[1] + counts[2]
	if frac := float64(head) / draws; frac < 0.25 {
		t.Fatalf("top-3 objects drew %.3f of requests, want >= 0.25 under s=1.1", frac)
	}
	// Pin the exact seeded histogram head. If this fails after an
	// intentional RNG or weights change, re-record the constants.
	want := []int{counts[0], counts[1], counts[2]}
	s2, err := NewStream(StreamConfig{Objects: 50, ZipfS: 1.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	counts2 := make([]int, 50)
	for i := 0; i < draws; i++ {
		counts2[s2.Next().Object]++
	}
	for i, w := range want {
		if counts2[i] != w {
			t.Fatalf("replayed histogram drifted at object %d: %d vs %d", i, counts2[i], w)
		}
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty slice did not return NaN")
	}
	// Single sample: every quantile is that sample.
	one := []float64{7.5}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := Percentile(one, q); got != 7.5 {
			t.Fatalf("single-sample q=%v = %v, want 7.5", q, got)
		}
	}
	// All-equal samples: every quantile is the common value.
	eq := []float64{3, 3, 3, 3, 3}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if got := Percentile(eq, q); got != 3 {
			t.Fatalf("all-equal q=%v = %v, want 3", q, got)
		}
	}
}

// TestPercentileNearestRank pins the exact nearest-rank definition on a
// hand-computed example: N=10, rank = ceil(q*10).
func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1},     // clamped to the minimum
		{0.05, 1},  // ceil(0.5) = 1
		{0.10, 1},  // ceil(1) = 1
		{0.11, 2},  // ceil(1.1) = 2
		{0.50, 5},  // exact median rank
		{0.51, 6},  // ceil(5.1) = 6
		{0.95, 10}, // ceil(9.5) = 10
		{0.99, 10}, // ceil(9.9) = 10
		{1, 10},    // the maximum
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.q); got != c.want {
			t.Fatalf("q=%v: got %v, want %v", c.q, got, c.want)
		}
	}
}

func TestCollectorSummary(t *testing.T) {
	c := NewCollector(8)
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	c.Record(Outcome{Latency: ms(1), Source: "download"})
	c.Record(Outcome{Latency: ms(2), Source: "cache"})
	c.Record(Outcome{Latency: ms(3), Source: "cache", Peer: true})
	c.Record(Outcome{Latency: ms(4), Source: "cache", Stale: true})
	c.Record(Outcome{Latency: ms(5), Source: "shed"})
	c.Record(Outcome{Latency: ms(6), Source: "miss"})
	c.Record(Outcome{Err: true})

	s := c.Summarize()
	if s.Requests != 7 || s.Errors != 1 {
		t.Fatalf("requests/errors = %d/%d, want 7/1", s.Requests, s.Errors)
	}
	if s.Hits != 3 || s.Downloads != 1 || s.Shed != 1 || s.Misses != 1 || s.PeerHits != 1 {
		t.Fatalf("hits=%d downloads=%d shed=%d misses=%d peer=%d, want 3/1/1/1/1",
			s.Hits, s.Downloads, s.Shed, s.Misses, s.PeerHits)
	}
	// Served = 4 (3 hits + 1 download); fresh = download + 2 non-stale hits.
	if s.HitRatio != 0.75 {
		t.Fatalf("hit ratio %v, want 0.75", s.HitRatio)
	}
	if s.FreshRatio != 0.75 {
		t.Fatalf("fresh ratio %v, want 0.75", s.FreshRatio)
	}
	// 6 latency samples 1..6ms; nearest-rank p50 = rank 3 = 3ms.
	if s.P50 != 0.003 {
		t.Fatalf("p50 %v, want 0.003", s.P50)
	}
	if s.Max != 0.006 {
		t.Fatalf("max %v, want 0.006", s.Max)
	}
}

func TestCollectorEmpty(t *testing.T) {
	s := NewCollector(0).Summarize()
	if s.Requests != 0 || s.P50 != 0 || s.P95 != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty summary %+v, want zeros", s)
	}
}
