// Package loadgen generates zipf-distributed request streams for driving
// live stations and summarizes the results: exact nearest-rank latency
// percentiles, hit ratio, freshness ratio, and peer-service counts. The
// stream is fully deterministic for a given seed so a load run can be
// replayed bit-for-bit, and the percentile estimator is exact (it sorts
// the recorded samples) rather than an approximating sketch — load runs
// are small enough that exactness is cheap and removes one source of
// cross-run noise from the archived numbers.
package loadgen

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mobicache/internal/catalog"
	"mobicache/internal/client"
	"mobicache/internal/rng"
)

// StreamConfig configures a deterministic request stream.
type StreamConfig struct {
	// Objects is the catalog size; requests draw objects in [0, Objects).
	Objects int
	// ZipfS is the zipf skew exponent (0 = uniform popularity).
	ZipfS float64
	// Clients is the number of distinct client IDs to round-robin over
	// (0 = 1).
	Clients int
	// TargetLo and TargetHi bound the uniform target-recency draw. Both
	// zero means every request demands target 1.0.
	TargetLo, TargetHi float64
	// Seed seeds the stream's private RNG.
	Seed uint64
}

// Stream produces a deterministic sequence of requests: zipf-popular
// objects, uniform target recencies, round-robin client IDs.
type Stream struct {
	alias   *rng.Alias
	src     *rng.Source
	clients int
	lo, hi  float64
	n       uint64
}

// NewStream validates the config and builds the alias table.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if cfg.Objects <= 0 {
		return nil, fmt.Errorf("loadgen: need a positive object count, got %d", cfg.Objects)
	}
	if cfg.ZipfS < 0 {
		return nil, fmt.Errorf("loadgen: negative zipf skew %v", cfg.ZipfS)
	}
	if cfg.TargetLo < 0 || cfg.TargetHi > 1 || cfg.TargetLo > cfg.TargetHi {
		return nil, fmt.Errorf("loadgen: target range [%v, %v] outside [0, 1]", cfg.TargetLo, cfg.TargetHi)
	}
	alias, err := rng.NewAlias(rng.ZipfWeights(cfg.Objects, cfg.ZipfS))
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	clients := cfg.Clients
	if clients <= 0 {
		clients = 1
	}
	lo, hi := cfg.TargetLo, cfg.TargetHi
	if lo == 0 && hi == 0 {
		lo, hi = 1, 1
	}
	return &Stream{
		alias:   alias,
		src:     rng.New(cfg.Seed),
		clients: clients,
		lo:      lo,
		hi:      hi,
	}, nil
}

// Next returns the stream's next request. Not safe for concurrent use;
// give each worker its own Stream (vary Seed) or serialize draws.
func (s *Stream) Next() client.Request {
	target := s.lo
	if s.hi > s.lo {
		target = s.lo + (s.hi-s.lo)*s.src.Float64()
	}
	r := client.Request{
		Client: int(s.n % uint64(s.clients)),
		Object: catalog.ID(s.alias.Sample(s.src)),
		Target: target,
	}
	s.n++
	return r
}

// Percentile returns the exact nearest-rank percentile of sorted (which
// MUST be ascending): the smallest sample such that at least q·N samples
// are ≤ it, i.e. rank ⌈q·N⌉ (1-based), clamped to the ends. By
// convention q=0 returns the minimum. NaN on an empty slice.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Summary is one load run's archived result. Latencies are seconds.
type Summary struct {
	Requests   uint64  `json:"requests"`
	Errors     uint64  `json:"errors"`
	Hits       uint64  `json:"hits"`        // served from station cache
	Downloads  uint64  `json:"downloads"`   // served via a fresh download
	Shed       uint64  `json:"shed"`        // refused by admission control
	Misses     uint64  `json:"misses"`      // not served at all
	PeerHits   uint64  `json:"peer_hits"`   // cache hits on cooperative copies
	Fresh      uint64  `json:"fresh"`       // served at or above target recency
	HitRatio   float64 `json:"hit_ratio"`   // Hits / served
	FreshRatio float64 `json:"fresh_ratio"` // Fresh / served
	P50        float64 `json:"p50_seconds"`
	P95        float64 `json:"p95_seconds"`
	P99        float64 `json:"p99_seconds"`
	Max        float64 `json:"max_seconds"`
}

// Collector accumulates per-request observations for one load run. Not
// safe for concurrent use; merge per-worker collectors or serialize.
type Collector struct {
	latencies []float64
	sum       Summary
}

// NewCollector pre-sizes the latency buffer for n expected requests.
func NewCollector(n int) *Collector {
	return &Collector{latencies: make([]float64, 0, n)}
}

// Outcome is the per-request observation fed to Record, mirroring the
// station's response: how the request was served and whether the served
// copy met the client's target recency.
type Outcome struct {
	Latency time.Duration
	Source  string // "download", "cache", "shed", "miss"
	Peer    bool   // served from a cooperatively fetched copy
	Stale   bool   // served below the client's target recency
	Err     bool   // transport or server error; nothing served
}

// Record folds one request's outcome into the run.
func (c *Collector) Record(o Outcome) {
	c.sum.Requests++
	if o.Err {
		c.sum.Errors++
		return
	}
	c.latencies = append(c.latencies, o.Latency.Seconds())
	switch o.Source {
	case "cache":
		c.sum.Hits++
		if o.Peer {
			c.sum.PeerHits++
		}
		if !o.Stale {
			c.sum.Fresh++
		}
	case "download":
		c.sum.Downloads++
		c.sum.Fresh++
	case "shed":
		c.sum.Shed++
	default:
		c.sum.Misses++
	}
}

// Summarize computes the final numbers. The collector's latency buffer
// is sorted in place; Record must not be called afterwards.
func (c *Collector) Summarize() Summary {
	s := c.sum
	served := s.Hits + s.Downloads
	if served > 0 {
		s.HitRatio = float64(s.Hits) / float64(served)
		s.FreshRatio = float64(s.Fresh) / float64(served)
	}
	sort.Float64s(c.latencies)
	s.P50 = Percentile(c.latencies, 0.50)
	s.P95 = Percentile(c.latencies, 0.95)
	s.P99 = Percentile(c.latencies, 0.99)
	if n := len(c.latencies); n > 0 {
		s.Max = c.latencies[n-1]
	} else {
		s.P50, s.P95, s.P99 = 0, 0, 0
	}
	return s
}
