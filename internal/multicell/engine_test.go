package multicell

import (
	"fmt"
	"strings"
	"testing"

	"mobicache/internal/basestation"
	"mobicache/internal/cache"
	"mobicache/internal/client"
	"mobicache/internal/core"
	"mobicache/internal/obs"
	"mobicache/internal/policy"
	"mobicache/internal/recency"
	"mobicache/internal/rng"
	"mobicache/internal/server"
)

// TestParallelMatchesSerial is the engine's keystone: across seeds, cell
// counts, mobility profiles, and sharing modes, the parallel engine must
// produce a Report byte-identical to the serial engine — worker count may
// only change wall-clock time, never results.
func TestParallelMatchesSerial(t *testing.T) {
	mobilities := map[string]client.Mobility{
		"fast":   {MeanResidence: 15, PDisconnect: 0.3, MeanAbsence: 8},
		"pinned": {MeanResidence: 50, PDisconnect: client.NeverDisconnect},
	}
	for _, seed := range []uint64{1, 7, 42} {
		for _, cells := range []int{1, 4, 13} {
			for mName, mob := range mobilities {
				for _, sharing := range []bool{false, true} {
					name := fmt.Sprintf("seed=%d/cells=%d/%s/sharing=%v", seed, cells, mName, sharing)
					t.Run(name, func(t *testing.T) {
						run := func(workers int) string {
							cfg := Config{
								Cells:         cells,
								Objects:       60,
								BudgetPerTick: 8,
								Clients:       90,
								Mobility:      mob,
								RequestProb:   0.4,
								Pattern:       rng.Zipf,
								CacheSharing:  sharing,
								Workers:       workers,
								Seed:          seed,
							}
							sys, err := New(cfg)
							if err != nil {
								t.Fatal(err)
							}
							rep, err := sys.Run(120)
							if err != nil {
								t.Fatal(err)
							}
							return fmt.Sprintf("%#v", rep)
						}
						serial := run(1)
						parallel := run(4)
						if serial != parallel {
							t.Fatalf("parallel report diverges from serial:\nserial:   %s\nparallel: %s", serial, parallel)
						}
						if auto := run(0); auto != serial {
							t.Fatalf("auto-worker report diverges from serial:\nserial: %s\nauto:   %s", serial, auto)
						}
					})
				}
			}
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	cfg := baseConfig()
	cfg.Workers = 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Workers() != 2 {
		t.Fatalf("workers = %d, want 2", sys.Workers())
	}
	cfg.Workers = 0
	sys, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w := sys.Workers(); w < 1 || w > cfg.Cells {
		t.Fatalf("default workers = %d, want in [1, %d]", w, cfg.Cells)
	}
}

// TestConfigRejections pins the up-front validation: every malformed field
// is rejected by New with a multicell-prefixed error naming the value,
// before any cell machinery is built.
func TestConfigRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"zero cells", func(c *Config) { c.Cells = 0 }, "cells 0"},
		{"negative cells", func(c *Config) { c.Cells = -3 }, "cells -3"},
		{"zero objects", func(c *Config) { c.Objects = 0 }, "objects 0"},
		{"zero clients", func(c *Config) { c.Clients = 0 }, "clients 0"},
		{"probability above one", func(c *Config) { c.RequestProb = 1.5 }, "request probability 1.5"},
		{"negative probability", func(c *Config) { c.RequestProb = -0.1 }, "request probability -0.1"},
		{"negative budget", func(c *Config) { c.BudgetPerTick = -10 }, "download budget -10"},
		{"negative update period", func(c *Config) { c.UpdatePeriod = -5 }, "update period -5"},
		{"negative workers", func(c *Config) { c.Workers = -2 }, "worker count -2"},
		{"fractional residence", func(c *Config) { c.Mobility.MeanResidence = 0.5 }, "mean residence 0.5"},
		{"disconnect probability above one", func(c *Config) { c.Mobility.PDisconnect = 1.5 }, "disconnect probability 1.5"},
		{"fractional absence", func(c *Config) { c.Mobility.MeanAbsence = 0.25 }, "mean absence 0.25"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig()
			tc.mutate(&cfg)
			_, err := New(cfg)
			if err == nil {
				t.Fatalf("config accepted: %+v", cfg)
			}
			if !strings.HasPrefix(err.Error(), "multicell: ") {
				t.Fatalf("error %q lacks multicell prefix", err)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestTickSteadyStateAllocs pins the scratch-buffer hoisting: once every
// cell's cache holds the whole catalog and the per-tick slices have grown
// to their working size, a tick allocates nothing.
func TestTickSteadyStateAllocs(t *testing.T) {
	cfg := Config{
		Cells:       3,
		Objects:     40,
		Clients:     120,
		Mobility:    client.Mobility{MeanResidence: 20, PDisconnect: 0.2, MeanAbsence: 10},
		RequestProb: 0.8,
		Pattern:     rng.Zipf,
		Workers:     1, // the serial loop; goroutine fan-out allocates by design
		Seed:        3,
	}
	for _, sharing := range []bool{false, true} {
		t.Run(fmt.Sprintf("sharing=%v", sharing), func(t *testing.T) {
			cfg := cfg
			cfg.CacheSharing = sharing
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm until every cell has cached the full catalog, so
			// steady-state ticks only refresh existing entries.
			if _, err := sys.Run(400); err != nil {
				t.Fatal(err)
			}
			tick := 400
			allocs := testing.AllocsPerRun(200, func() {
				if err := sys.tick(tick); err != nil {
					t.Fatal(err)
				}
				tick++
			})
			if allocs != 0 {
				t.Fatalf("steady-state tick allocates %v objects/op, want 0", allocs)
			}
		})
	}
}

// TestHandoffDropDeltas pins the per-tick delta bookkeeping: the engine
// records handoffs and drops as deltas against the previous tick, and the
// summed deltas must reproduce the population's absolute counters exactly.
func TestHandoffDropDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewMulticellMetrics(reg, 0)
	cfg := baseConfig()
	cfg.Mobility = client.Mobility{MeanResidence: 5, PDisconnect: 0.4, MeanAbsence: 4}
	cfg.Metrics = m
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(250)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Handoffs == 0 || rep.Drops == 0 {
		t.Fatalf("mobility too tame for the test: %+v", rep)
	}
	if got := m.Handoffs.Value(); got != sys.pop.Handoffs() {
		t.Fatalf("summed handoff deltas = %d, population counter = %d", got, sys.pop.Handoffs())
	}
	if got := m.Drops.Value(); got != sys.pop.Drops() {
		t.Fatalf("summed drop deltas = %d, population counter = %d", got, sys.pop.Drops())
	}
	if rep.Handoffs != sys.pop.Handoffs() || rep.Drops != sys.pop.Drops() {
		t.Fatalf("report disagrees with population: %+v", rep)
	}
}

// TestPerCellShardAttribution pins the metrics sharding: each cell writes
// its own {cell="N"} series, the aggregate absorbs exactly the shard sums,
// and mobicache_ticks_total counts engine ticks — not cell-ticks.
func TestPerCellShardAttribution(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewMulticellMetrics(reg, 0)
	cfg := baseConfig()
	cfg.Metrics = m
	cfg.CacheSharing = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 150
	rep, err := sys.Run(ticks)
	if err != nil {
		t.Fatal(err)
	}

	if got := m.Station.Ticks.Value(); got != ticks {
		t.Fatalf("aggregate ticks = %d, want %d engine ticks (cell-tick aliasing bug?)", got, ticks)
	}
	var shardReqs, shardDownloads uint64
	for c := 0; c < cfg.Cells; c++ {
		shard := m.CellShard(c)
		if got := shard.Ticks.Value(); got != ticks {
			t.Fatalf("cell %d shard ticks = %d, want %d", c, got, ticks)
		}
		if got := shard.Requests.Value(); got != rep.PerCellRequests[c] {
			t.Fatalf("cell %d shard requests = %d, report says %d", c, got, rep.PerCellRequests[c])
		}
		shardReqs += shard.Requests.Value()
		shardDownloads += shard.PolicyDownloads.Value() + shard.MissDownloads.Value()
	}
	if shardReqs != rep.Requests {
		t.Fatalf("shard request sum = %d, report total = %d", shardReqs, rep.Requests)
	}
	if got := m.Station.Requests.Value(); got != rep.Requests {
		t.Fatalf("aggregate requests = %d, report total = %d", got, rep.Requests)
	}
	if shardDownloads != rep.Downloads {
		t.Fatalf("shard download sum = %d, report total = %d", shardDownloads, rep.Downloads)
	}
	if got := m.SharedCopies.Value(); got != rep.SharedCopies {
		t.Fatalf("shared-copy counter = %d, report says %d", got, rep.SharedCopies)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`mobicache_ticks_total{cell="0"}`,
		fmt.Sprintf(`mobicache_ticks_total{cell="%d"}`, cfg.Cells-1),
		"mobicache_shared_copy_failures_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("/metrics output lacks %q", want)
		}
	}
}

// TestSharedCopyFailureCounted pins satellite semantics: a cooperative
// copy the local cache rejects is counted in the report and the obs
// counter instead of being silently discarded.
func TestSharedCopyFailureCounted(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewMulticellMetrics(reg, 0)
	cfg := baseConfig()
	cfg.Cells = 2
	cfg.CacheSharing = true
	cfg.Metrics = m
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Swap cell 0's station for one whose bounded cache cannot hold an
	// oversized entry, then hand applyShared a gathered copy that must be
	// rejected (ErrTooLarge) and one that must land.
	sel, err := core.NewSelector(sys.cat, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewOnDemandKnapsack(sel)
	if err != nil {
		t.Fatal(err)
	}
	st, err := basestation.New(basestation.Config{
		Catalog: sys.cat,
		Server:  server.New(sys.cat, nil),
		Policy:  pol,
		Cache:   cache.MustNew(1, recency.DefaultDecay, cache.NewLRU()),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.stations[0] = st
	sys.pending = append(sys.pending,
		shareOp{cell: 0, src: &cache.Entry{ID: 0, Size: 2, Recency: 1}},
		shareOp{cell: 0, src: &cache.Entry{ID: 1, Size: 1, Recency: 1}},
	)
	sys.applyShared(0)
	if sys.sharedFailures != 1 {
		t.Fatalf("shared failures = %d, want 1", sys.sharedFailures)
	}
	if sys.shared != 1 {
		t.Fatalf("shared copies = %d, want 1", sys.shared)
	}
	if got := m.SharedCopyFailures.Value(); got != 1 {
		t.Fatalf("failure counter = %d, want 1", got)
	}
	if got := m.SharedCopies.Value(); got != 1 {
		t.Fatalf("copy counter = %d, want 1", got)
	}
	rep, err := sys.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SharedCopyFailures != 1 || rep.SharedCopies != 1 {
		t.Fatalf("report = %+v, want 1 failure and 1 copy", rep)
	}
}

// TestRepeatedRunsContinue ensures the scratch buffers survive Run
// boundaries: a second Run on the same system works and reports only its
// own ticks.
func TestRepeatedRunsContinue(t *testing.T) {
	sys, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(50); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ticks != 50 {
		t.Fatalf("second run ticks = %d", rep.Ticks)
	}
	if rep.Requests == 0 {
		t.Fatal("second run saw no requests")
	}
}
