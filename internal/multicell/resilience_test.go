package multicell

import (
	"fmt"
	"strings"
	"testing"

	"mobicache/internal/basestation"
	"mobicache/internal/client"
	"mobicache/internal/fault"
	"mobicache/internal/resilience"
	"mobicache/internal/rng"
)

// resilientConfig is the shared fixture: 4 cells, a cell-failure schedule
// taking cell 1 down mid-run, flaky fetch paths, a breaker, and admission
// control — every resilience feature armed at once.
func resilientConfig(t *testing.T) Config {
	t.Helper()
	cs := fault.MustCellSchedule(4)
	if err := cs.AddOutage(1, fault.Window{From: 30, To: 60}); err != nil {
		t.Fatal(err)
	}
	if err := cs.AddOutage(3, fault.Window{From: 10, To: 12, Every: 25}); err != nil {
		t.Fatal(err)
	}
	return Config{
		Cells:         4,
		Objects:       60,
		BudgetPerTick: 8,
		Clients:       120,
		Mobility:      client.Mobility{MeanResidence: 15, PDisconnect: 0.2, MeanAbsence: 8},
		RequestProb:   0.5,
		Pattern:       rng.Zipf,
		Seed:          11,
		CellFaults:    cs,
		FetchFaults: func(cell int) (*fault.Schedule, error) {
			s := fault.MustSchedule(1, 100+uint64(cell))
			err := s.AddOutage(0, fault.Window{From: 40, To: 55, Every: 50})
			return s, err
		},
		Retry: basestation.RetryConfig{MaxAttempts: 2},
		Resilience: &resilience.Config{
			Breaker:   resilience.BreakerConfig{FailureThreshold: 3, OpenTicks: 6},
			Admission: resilience.Admission{MaxRequestsPerTick: 12},
		},
	}
}

// TestResilienceParallelMatchesSerial extends the engine keystone to the
// failure-domain machinery: with cells dying and rejoining, breakers
// tripping, and admission shedding, the Report must stay byte-identical
// for any worker count.
func TestResilienceParallelMatchesSerial(t *testing.T) {
	for _, sharing := range []bool{false, true} {
		t.Run(fmt.Sprintf("sharing=%v", sharing), func(t *testing.T) {
			run := func(workers int) string {
				cfg := resilientConfig(t)
				cfg.CacheSharing = sharing
				cfg.Workers = workers
				sys, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := sys.Run(120)
				if err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("%#v", rep)
			}
			serial := run(1)
			for _, w := range []int{4, 0} {
				if got := run(w); got != serial {
					t.Fatalf("workers=%d report diverges from serial:\nserial: %s\ngot:    %s", w, serial, got)
				}
			}
		})
	}
}

// TestEmptyResilienceIsIdentity pins the no-op guarantees: a cell
// schedule with no windows, and a breaker that never sees a failure,
// must both reproduce the plain run bit for bit.
func TestEmptyResilienceIsIdentity(t *testing.T) {
	run := func(mutate func(*Config)) string {
		cfg := baseConfig()
		cfg.Workers = 1
		mutate(&cfg)
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run(100)
		if err != nil {
			t.Fatal(err)
		}
		// Blank the resilience accounting before comparing: the plain
		// run has no breakers, so only behaviour must match.
		rep.ShedRequests, rep.ShortCircuits, rep.BreakerTrips = 0, 0, 0
		rep.FailedDownloads, rep.StaleFallbacks = 0, 0
		return fmt.Sprintf("%#v", rep)
	}
	plain := run(func(*Config) {})
	emptySched := run(func(c *Config) { c.CellFaults = fault.MustCellSchedule(c.Cells) })
	if emptySched != plain {
		t.Fatalf("empty cell schedule diverges:\nplain: %s\ngot:   %s", plain, emptySched)
	}
	// A breaker over a fault-free fetch path stays closed forever and
	// admission far above the request rate never sheds.
	idleBreaker := run(func(c *Config) {
		c.Resilience = &resilience.Config{
			Breaker:   resilience.BreakerConfig{FailureThreshold: 3},
			Admission: resilience.Admission{MaxRequestsPerTick: 100000},
		}
	})
	if idleBreaker != plain {
		t.Fatalf("idle breaker diverges:\nplain: %s\ngot:   %s", plain, idleBreaker)
	}
}

// TestCellBlackoutReroutes pins the failure-domain accounting: with one
// cell down, every one of its requests lands on the nearest live cell —
// none lost, total served conserved against the fault-free run.
func TestCellBlackoutReroutes(t *testing.T) {
	run := func(cs *fault.CellSchedule) Report {
		cfg := baseConfig()
		cfg.Workers = 1
		cfg.CellFaults = cs
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run(80)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run(nil)

	cs := fault.MustCellSchedule(3)
	if err := cs.AddOutage(1, fault.Window{From: 20, To: 50}); err != nil {
		t.Fatal(err)
	}
	rep := run(cs)
	if rep.CellDownTicks != 30 {
		t.Errorf("CellDownTicks = %d, want 30", rep.CellDownTicks)
	}
	if rep.Reroutes == 0 {
		t.Error("no requests rerouted during a 30-tick cell outage")
	}
	if rep.LostRequests != 0 {
		t.Errorf("LostRequests = %d with live neighbours available", rep.LostRequests)
	}
	// Conservation: the generation draws are identical (rerouting never
	// consumes randomness), so every request the plain run served is
	// served somewhere — rerouted, not dropped.
	if rep.Requests != plain.Requests {
		t.Errorf("served %d requests, fault-free run served %d", rep.Requests, plain.Requests)
	}
	// The down cell serves nothing inside its window, so its share drops
	// and its upward neighbour (cell 2, the reroute target) absorbs it.
	if rep.PerCellRequests[1] >= plain.PerCellRequests[1] {
		t.Errorf("down cell served %d >= fault-free %d", rep.PerCellRequests[1], plain.PerCellRequests[1])
	}
	if rep.PerCellRequests[2] <= plain.PerCellRequests[2] {
		t.Errorf("reroute target served %d <= fault-free %d", rep.PerCellRequests[2], plain.PerCellRequests[2])
	}

	// Total blackout: with every cell down there is nowhere to reroute,
	// so the window's requests are lost — and exactly accounted for.
	all := fault.MustCellSchedule(3)
	if err := all.AddOutage(fault.AllCells, fault.Window{From: 20, To: 30}); err != nil {
		t.Fatal(err)
	}
	dark := run(all)
	if dark.CellDownTicks != 30 { // 3 cells x 10 ticks
		t.Errorf("blackout CellDownTicks = %d, want 30", dark.CellDownTicks)
	}
	if dark.LostRequests == 0 {
		t.Error("total blackout lost no requests")
	}
	if dark.Reroutes != 0 {
		t.Errorf("Reroutes = %d during total blackout, want 0", dark.Reroutes)
	}
	if dark.Requests+dark.LostRequests != plain.Requests {
		t.Errorf("served %d + lost %d != fault-free %d", dark.Requests, dark.LostRequests, plain.Requests)
	}
}

// TestBreakerTripsAcrossCells drives every cell's fetch path through a
// long upstream outage and checks the breakers trip and the stations fall
// back to stale service instead of burning retries all outage long.
func TestBreakerTripsAcrossCells(t *testing.T) {
	cfg := baseConfig()
	cfg.Workers = 1
	cfg.FetchFaults = func(cell int) (*fault.Schedule, error) {
		s := fault.MustSchedule(1, uint64(cell))
		err := s.AddOutage(0, fault.Window{From: 20, To: 70})
		return s, err
	}
	cfg.Retry = basestation.RetryConfig{MaxAttempts: 2}
	cfg.Resilience = &resilience.Config{
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, OpenTicks: 8},
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BreakerTrips == 0 {
		t.Error("no breaker tripped through a 50-tick upstream outage")
	}
	if rep.StaleFallbacks == 0 {
		t.Error("no stale fallbacks while breakers were open")
	}
	if rep.FailedDownloads == 0 {
		t.Error("no failed downloads recorded during the outage")
	}
}

// TestResilienceConfigRejections covers the new validation paths.
func TestResilienceConfigRejections(t *testing.T) {
	cfg := baseConfig()
	cfg.CellFaults = fault.MustCellSchedule(2) // deployment has 3 cells
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "covers 2 cells") {
		t.Errorf("mismatched cell schedule: err = %v", err)
	}
	cfg = baseConfig()
	cfg.Resilience = &resilience.Config{Admission: resilience.Admission{MaxRequestsPerTick: -1}}
	if _, err := New(cfg); err == nil || !strings.HasPrefix(err.Error(), "multicell: ") {
		t.Errorf("negative admission: err = %v", err)
	}
	cfg = baseConfig()
	cfg.FetchFaults = func(cell int) (*fault.Schedule, error) {
		return nil, fmt.Errorf("boom")
	}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "cell 0 fault schedule") {
		t.Errorf("fetch-fault constructor error: err = %v", err)
	}
}

// TestAdmissionShedsUnderOverload arms a tiny per-tick budget and checks
// the engine sheds deterministically and reports it.
func TestAdmissionShedsUnderOverload(t *testing.T) {
	run := func() Report {
		cfg := baseConfig()
		cfg.Workers = 4
		cfg.RequestProb = 0.9
		cfg.Resilience = &resilience.Config{
			Admission: resilience.Admission{MaxRequestsPerTick: 5},
		}
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run(60)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if rep.ShedRequests == 0 {
		t.Fatal("overloaded system shed nothing")
	}
	if again := run(); fmt.Sprintf("%#v", again) != fmt.Sprintf("%#v", rep) {
		t.Error("overload shedding not deterministic across runs")
	}
}
