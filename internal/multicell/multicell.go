// Package multicell realizes the full geography of the paper's Figure 1:
// several wireless cells, each with its own base station and cache, all
// pulling from the same remote servers, with clients that move between
// cells and occasionally disconnect. Optionally the base stations
// cooperate: on a local cache miss a station copies a neighbouring cell's
// cached entry (staleness preserved) over the fixed network instead of
// reaching the remote server.
package multicell

import (
	"fmt"

	"mobicache/internal/basestation"
	"mobicache/internal/cache"
	"mobicache/internal/catalog"
	"mobicache/internal/client"
	"mobicache/internal/core"
	"mobicache/internal/obs"
	"mobicache/internal/policy"
	"mobicache/internal/rng"
	"mobicache/internal/server"
)

// Config configures a multi-cell system.
type Config struct {
	// Cells is the number of cells (>= 1).
	Cells int
	// Objects is the number of unit-size objects served.
	Objects int
	// UpdatePeriod is the simultaneous update period.
	UpdatePeriod int
	// BudgetPerTick is each station's per-tick download budget
	// (0 = unlimited).
	BudgetPerTick int64
	// Clients is the mobile population size.
	Clients int
	// Mobility drives residence/handoff/disconnection.
	Mobility client.Mobility
	// RequestProb is each connected client's per-tick request
	// probability.
	RequestProb float64
	// Pattern is the shared popularity skew.
	Pattern rng.Popularity
	// CacheSharing enables cooperative base-station caching.
	CacheSharing bool
	// Seed drives all randomness.
	Seed uint64
	// Metrics, when non-nil, receives live observability updates. All
	// cells share the bundle's aggregate station metrics (the counters
	// are atomic), so mobicache_ticks_total counts cell-ticks.
	Metrics *obs.MulticellMetrics
}

// Report aggregates a run.
type Report struct {
	Ticks         int
	Requests      uint64
	Downloads     uint64 // remote-server downloads across all cells
	SharedCopies  uint64 // cooperative copies between stations
	MeanScore     float64
	MeanRecency   float64
	Handoffs      uint64
	Drops         uint64
	PerCellScores []float64
}

// System is a running multi-cell deployment.
type System struct {
	cfg      Config
	cat      *catalog.Catalog
	srv      *server.Server
	stations []*basestation.Station
	pop      *client.Population
	src      *rng.Source
	sampler  *rng.Alias
	shared   uint64
	// lastHandoffs/lastDrops remember the population counters at the end
	// of the previous tick so metrics record per-tick deltas.
	lastHandoffs uint64
	lastDrops    uint64
}

// New builds the system: one shared server, one station per cell (each
// with its own unlimited cache and on-demand knapsack policy), and a
// mobile population spread over the cells.
func New(cfg Config) (*System, error) {
	if cfg.Cells <= 0 || cfg.Objects <= 0 || cfg.Clients <= 0 {
		return nil, fmt.Errorf("multicell: cells %d / objects %d / clients %d must be positive",
			cfg.Cells, cfg.Objects, cfg.Clients)
	}
	if cfg.RequestProb < 0 || cfg.RequestProb > 1 {
		return nil, fmt.Errorf("multicell: request probability %v out of [0,1]", cfg.RequestProb)
	}
	if cfg.UpdatePeriod <= 0 {
		cfg.UpdatePeriod = 5
	}
	cfg.Mobility = cfg.Mobility.WithDefaults()
	cat, err := catalog.Uniform(cfg.Objects, 1)
	if err != nil {
		return nil, err
	}
	srv := server.New(cat, catalog.NewPeriodicAll(cat, cfg.UpdatePeriod))
	sys := &System{
		cfg:     cfg,
		cat:     cat,
		srv:     srv,
		src:     rng.New(cfg.Seed),
		sampler: cfg.Pattern.NewSampler(cat.Len()),
	}
	var sm *obs.StationMetrics
	var ring *obs.TraceRing
	if cfg.Metrics != nil {
		sm = cfg.Metrics.Station
		if sm != nil {
			ring = sm.Trace
		}
	}
	for c := 0; c < cfg.Cells; c++ {
		sel, err := core.NewSelector(cat, core.Config{Trace: ring})
		if err != nil {
			return nil, err
		}
		pol, err := policy.NewOnDemandKnapsack(sel)
		if err != nil {
			return nil, err
		}
		st, err := basestation.New(basestation.Config{
			Catalog:          cat,
			Server:           srv,
			Policy:           pol,
			BudgetPerTick:    cfg.BudgetPerTick,
			CompulsoryMisses: true,
			Metrics:          sm,
		})
		if err != nil {
			return nil, err
		}
		sys.stations = append(sys.stations, st)
	}
	pop, err := client.NewPopulation(cfg.Clients, cfg.Cells, cfg.Mobility, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	sys.pop = pop
	return sys, nil
}

// Station returns cell c's base station (for inspection).
func (s *System) Station(c int) *basestation.Station { return s.stations[c] }

// Run executes n ticks and returns the aggregated report.
func (s *System) Run(n int) (Report, error) {
	var rep Report
	cellTotals := make([]basestation.Totals, s.cfg.Cells)
	for tick := 0; tick < n; tick++ {
		s.pop.Tick()
		updated := s.srv.Tick(tick)

		// Connected clients issue requests to their cell's station.
		perCell := make([][]client.Request, s.cfg.Cells)
		connected := 0
		for i := 0; i < s.pop.Len(); i++ {
			if !s.pop.Connected(i) {
				continue
			}
			connected++
			if !s.src.Bernoulli(s.cfg.RequestProb) {
				continue
			}
			cell := s.pop.Cell(i)
			perCell[cell] = append(perCell[cell], client.Request{
				Client: i,
				Object: catalog.ID(s.sampler.Sample(s.src)),
				Target: 1,
				Tick:   tick,
			})
		}
		if m := s.cfg.Metrics; m != nil {
			m.Connected.Set(float64(connected))
			m.Handoffs.Add(s.pop.Handoffs() - s.lastHandoffs)
			m.Drops.Add(s.pop.Drops() - s.lastDrops)
			s.lastHandoffs, s.lastDrops = s.pop.Handoffs(), s.pop.Drops()
		}

		for c, st := range s.stations {
			if s.cfg.CacheSharing {
				s.shareInto(c, perCell[c], float64(tick))
			}
			res, err := st.ServeTick(tick, perCell[c], updated)
			if err != nil {
				return rep, fmt.Errorf("multicell: cell %d: %w", c, err)
			}
			cellTotals[c].Add(res)
		}
	}
	rep.Ticks = n
	rep.Handoffs = s.pop.Handoffs()
	rep.Drops = s.pop.Drops()
	rep.SharedCopies = s.shared
	var scoreSum, recencySum float64
	for c := range cellTotals {
		t := &cellTotals[c]
		rep.Requests += t.Requests
		rep.Downloads += t.Downloads()
		scoreSum += t.ScoreSum
		recencySum += t.RecencySum
		rep.PerCellScores = append(rep.PerCellScores, t.MeanScore())
	}
	if rep.Requests > 0 {
		rep.MeanScore = scoreSum / float64(rep.Requests)
		rep.MeanRecency = recencySum / float64(rep.Requests)
	}
	return rep, nil
}

// shareInto copies entries for cell's requested-but-absent objects from
// whichever other cell holds the freshest copy.
func (s *System) shareInto(cell int, reqs []client.Request, now float64) {
	local := s.stations[cell].Cache()
	seen := make(map[catalog.ID]bool)
	for _, r := range reqs {
		if seen[r.Object] || local.Contains(r.Object) {
			continue
		}
		seen[r.Object] = true
		var best *cache.Entry
		for o, other := range s.stations {
			if o == cell {
				continue
			}
			if e, ok := other.Cache().Peek(r.Object); ok {
				if best == nil || e.Recency > best.Recency {
					best = e
				}
			}
		}
		if best != nil {
			if err := local.PutCopy(best, now); err == nil {
				s.shared++
				if m := s.cfg.Metrics; m != nil {
					m.SharedCopies.Inc()
				}
			}
		}
	}
}
