// Package multicell realizes the full geography of the paper's Figure 1:
// several wireless cells, each with its own base station and cache, all
// pulling from the same remote servers, with clients that move between
// cells and occasionally disconnect. Optionally the base stations
// cooperate: on a local cache miss a station copies a neighbouring cell's
// cached entry (staleness preserved) over the fixed network instead of
// reaching the remote server.
//
// # Tick engine
//
// Each tick runs in two phases. The serial phase advances the shared
// state no cell may touch concurrently: client mobility, the shared
// server's update schedule (whose OnUpdate callbacks decay every cell's
// cache), per-cell request generation, and — with cooperative caching on
// — the sharing snapshot, which reads neighbour caches and must complete
// before any cell mutates. The parallel phase then fans ServeTick across
// cells on a bounded worker pool, each cell confined to its own cache,
// policy, and metrics shard, with results landing in an order-stable
// slice.
//
// Determinism: every random draw in the serial phase comes either from
// the population's private stream or from one of the per-cell streams
// derived via a splitmix64 chain from Config.Seed, and the parallel phase
// consumes no randomness at all, so a run's Report is byte-identical for
// any worker count — Workers only changes wall-clock time.
package multicell

import (
	"fmt"

	"mobicache/internal/basestation"
	"mobicache/internal/cache"
	"mobicache/internal/catalog"
	"mobicache/internal/client"
	"mobicache/internal/core"
	"mobicache/internal/dissemination"
	"mobicache/internal/fault"
	"mobicache/internal/obs"
	"mobicache/internal/parallel"
	"mobicache/internal/policy"
	"mobicache/internal/resilience"
	"mobicache/internal/rng"
	"mobicache/internal/server"
)

// Config configures a multi-cell system.
type Config struct {
	// Cells is the number of cells (>= 1).
	Cells int
	// Objects is the number of unit-size objects served.
	Objects int
	// UpdatePeriod is the simultaneous update period (0 = default 5).
	UpdatePeriod int
	// BudgetPerTick is each station's per-tick download budget
	// (0 = unlimited).
	BudgetPerTick int64
	// Clients is the mobile population size.
	Clients int
	// Mobility drives residence/handoff/disconnection.
	Mobility client.Mobility
	// RequestProb is each connected client's per-tick request
	// probability.
	RequestProb float64
	// Pattern is the shared popularity skew.
	Pattern rng.Popularity
	// CacheSharing enables cooperative base-station caching.
	CacheSharing bool
	// Workers bounds the goroutines serving cells in the parallel phase:
	// 1 runs the serial engine (no goroutines), 0 picks a default from
	// GOMAXPROCS capped at Cells. Any value yields the identical Report.
	Workers int
	// Solver selects the knapsack algorithm each cell's selector uses
	// (default core.SolverDP). Each cell owns its own selector, so the
	// incremental kinds keep per-cell warm state and stay deterministic
	// for any worker count.
	Solver core.SolverKind
	// Seed drives all randomness.
	Seed uint64
	// CellFaults, when non-nil, schedules whole-cell outages (failure
	// domains above the fetch-path faults). A down cell serves nothing:
	// its clients' requests are rerouted to the nearest live cell
	// (scanning upward mod Cells), it neither donates nor receives
	// cooperative copies, and its cache keeps decaying with master
	// updates so it rejoins stale — exactly what a station that was
	// offline through update traffic should look like. Downtime is a
	// pure function of (cell, tick) and rerouted requests still draw
	// from their home cell's stream, so reports stay byte-identical for
	// any Workers count, and a schedule with no windows reproduces the
	// fault-free run exactly. Must cover exactly Cells cells.
	CellFaults *fault.CellSchedule
	// FetchFaults, when non-nil, is called once per cell to build that
	// cell's upstream fault schedule; the cell's station then fetches
	// through its own server.FaultyServer wrapping the shared server.
	// Per-cell schedules (rather than one shared one) keep the parallel
	// phase race-free and deterministic: each cell owns its failure
	// draws, so they depend only on that cell's fetch sequence.
	FetchFaults func(cell int) (*fault.Schedule, error)
	// Retry is each station's fetch retry policy (used with FetchFaults
	// or Resilience).
	Retry basestation.RetryConfig
	// Resilience, when non-nil, arms every cell's station with its own
	// circuit breaker and admission control. A breaker needs a fetch
	// path that can fail, so enabling one without FetchFaults installs
	// an empty (fault-free) per-cell schedule — behaviourally identical
	// to the ideal path.
	Resilience *resilience.Config
	// Metrics, when non-nil, receives live observability updates. The
	// bundle must come from obs.NewMulticellMetrics: each cell writes to
	// its own per-cell shard ({cell="N"} series), and after every tick
	// the shards are merged into the aggregate Station bundle, whose
	// mobicache_ticks_total counts engine ticks — not cell-ticks.
	Metrics *obs.MulticellMetrics
	// Dissemination replaces every cell's knapsack station with a
	// push/broadcast cell of the given strategy (see
	// internal/dissemination). The zero value (OnDemand) keeps stations.
	// Cell faults and per-cell fetch faults still apply; CacheSharing
	// and Resilience guard the stations' caches and fetch paths and do
	// not compose with a push strategy.
	Dissemination dissemination.Strategy
	// DisseminationKnobs tunes the active dissemination strategy (zero
	// values select the package defaults).
	DisseminationKnobs dissemination.Knobs
}

// validate rejects a malformed configuration up front, so errors carry
// multicell context instead of surfacing later from some cell's station
// constructor.
func (cfg *Config) validate() error {
	if cfg.Cells <= 0 {
		return fmt.Errorf("multicell: cells %d must be positive", cfg.Cells)
	}
	if cfg.Objects <= 0 {
		return fmt.Errorf("multicell: objects %d must be positive", cfg.Objects)
	}
	if cfg.Clients <= 0 {
		return fmt.Errorf("multicell: clients %d must be positive", cfg.Clients)
	}
	if cfg.RequestProb < 0 || cfg.RequestProb > 1 {
		return fmt.Errorf("multicell: request probability %v out of [0,1]", cfg.RequestProb)
	}
	if cfg.BudgetPerTick < 0 {
		return fmt.Errorf("multicell: negative per-cell download budget %d", cfg.BudgetPerTick)
	}
	if cfg.UpdatePeriod < 0 {
		return fmt.Errorf("multicell: negative update period %d", cfg.UpdatePeriod)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("multicell: negative worker count %d", cfg.Workers)
	}
	if cfg.CellFaults != nil && cfg.CellFaults.Cells() != cfg.Cells {
		return fmt.Errorf("multicell: cell-fault schedule covers %d cells, deployment has %d",
			cfg.CellFaults.Cells(), cfg.Cells)
	}
	if cfg.Resilience != nil {
		if err := cfg.Resilience.Validate(); err != nil {
			return fmt.Errorf("multicell: %w", err)
		}
	}
	if cfg.Dissemination != dissemination.OnDemand {
		if cfg.CacheSharing {
			return fmt.Errorf("multicell: cooperative cache sharing copies station caches; it does not compose with dissemination strategy %q", cfg.Dissemination)
		}
		if cfg.Resilience != nil {
			return fmt.Errorf("multicell: resilience layer guards the stations' fetch paths; it does not compose with dissemination strategy %q", cfg.Dissemination)
		}
	}
	m := cfg.Mobility.WithDefaults()
	if m.MeanResidence < 1 {
		return fmt.Errorf("multicell: mean residence %v must be >= 1", m.MeanResidence)
	}
	if m.PDisconnect < 0 || m.PDisconnect > 1 {
		return fmt.Errorf("multicell: disconnect probability %v out of [0,1]", m.PDisconnect)
	}
	if m.MeanAbsence < 1 {
		return fmt.Errorf("multicell: mean absence %v must be >= 1", m.MeanAbsence)
	}
	return nil
}

// Report aggregates a run.
type Report struct {
	Ticks              int
	Requests           uint64
	Downloads          uint64 // remote-server downloads across all cells
	SharedCopies       uint64 // cooperative copies between stations
	SharedCopyFailures uint64 // cooperative copies the local cache rejected
	MeanScore          float64
	MeanRecency        float64
	Handoffs           uint64
	Drops              uint64
	PerCellScores      []float64
	PerCellRequests    []uint64
	PerCellDownloads   []uint64

	// Resilience accounting (zero without cell faults / breakers /
	// admission control).
	Reroutes        uint64 // requests rerouted from a down cell to a live one
	LostRequests    uint64 // requests lost because every cell was down
	CellDownTicks   uint64 // cell-ticks spent inside a cell outage window
	ShedRequests    uint64 // requests refused by admission control
	ShortCircuits   uint64 // downloads refused outright by open breakers
	BreakerTrips    uint64 // circuit-breaker trips across all cells
	FailedDownloads uint64 // downloads abandoned after retries/timeout
	StaleFallbacks  uint64 // requests served stale because a refresh failed

	// Dissemination accounting (zero on the default on-demand path).
	Dissemination       string // active strategy name ("" = stations)
	InvalidationReports uint64 // invalidation reports broadcast across all cells
	InvalidatedEntries  uint64 // terminal cache entries dropped by reports
	TerminalPurges      uint64 // whole-cache terminal drops
	PushServed          uint64 // requests satisfied by broadcast schedules
	PullServed          uint64 // requests satisfied by pull backchannels
	PushUnits           uint64 // broadcast-channel bandwidth spent
}

// shareOp is one gathered cooperative copy: install src (an entry of some
// neighbour's cache) into cell's cache.
type shareOp struct {
	cell int
	src  *cache.Entry
}

// System is a running multi-cell deployment.
type System struct {
	cfg      Config
	cat      *catalog.Catalog
	srv      *server.Server
	stations []*basestation.Station
	// dcells replaces stations cell-for-cell when a dissemination
	// strategy is active (stations stays empty then).
	dcells []*dissemination.Cell
	// dcellStart snapshots each dissemination cell's stats at Run start
	// so the report covers only the latest Run, like cellTotals.
	dcellStart []dissemination.Stats
	pop        *client.Population
	// cellSrc holds one independent request stream per cell, derived via
	// a splitmix64 chain from cfg.Seed, so a cell's draws depend only on
	// the clients visiting it — never on sibling cells or worker count.
	cellSrc []*rng.Source
	sampler *rng.Alias
	workers int
	merger  *obs.ShardMerger

	shared         uint64
	sharedFailures uint64
	// lastHandoffs/lastDrops remember the population counters at the end
	// of the previous tick so metrics record per-tick deltas.
	lastHandoffs uint64
	lastDrops    uint64

	// breakers holds each cell's circuit breaker (nil entries when
	// resilience is off); the engine reads them for the aggregate
	// breaker-state gauge and the trips report.
	breakers []*resilience.Breaker
	// downNow/rerouteTo are the tick's cell-failure view: downNow[c]
	// marks a cell inside an outage window, rerouteTo[c] is the cell
	// that serves c's requests this tick (c itself when live, -1 when
	// every cell is down). Identity when no CellFaults are scheduled.
	downNow   []bool
	rerouteTo []int
	// Cell-failure totals for the current Run.
	reroutes      uint64
	lost          uint64
	cellDownTicks uint64
	// reroutesNow/lostNow accumulate within one tick's generation walk.
	reroutesNow int
	lostNow     int

	// Reusable per-tick scratch, hoisted out of the tick loop so
	// steady-state ticks allocate nothing.
	perCell    [][]client.Request       // this tick's requests, by cell
	results    []basestation.TickResult // order-stable parallel-phase results
	cellTotals []basestation.Totals
	seen       []bool       // per-object dedup during the sharing gather
	seenIDs    []catalog.ID // flagged entries, for an O(flags) reset
	pending    []shareOp    // gathered copies, applied after all gathers
	genVisit   func(i, cell int)
	genTick    int
	connected  int
}

// New builds the system: one shared server, one station per cell (each
// with its own unlimited cache, on-demand knapsack policy, and — when
// metrics are attached — its own per-cell metrics shard), and a mobile
// population spread over the cells.
func New(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.UpdatePeriod == 0 {
		cfg.UpdatePeriod = 5
	}
	cfg.Mobility = cfg.Mobility.WithDefaults()
	cat, err := catalog.Uniform(cfg.Objects, 1)
	if err != nil {
		return nil, err
	}
	srv := server.New(cat, catalog.NewPeriodicAll(cat, cfg.UpdatePeriod))
	sys := &System{
		cfg:        cfg,
		cat:        cat,
		srv:        srv,
		cellSrc:    rng.Streams(cfg.Seed, cfg.Cells),
		sampler:    cfg.Pattern.NewSampler(cat.Len()),
		workers:    parallel.Workers(cfg.Cells),
		perCell:    make([][]client.Request, cfg.Cells),
		results:    make([]basestation.TickResult, cfg.Cells),
		cellTotals: make([]basestation.Totals, cfg.Cells),
		seen:       make([]bool, cat.Len()),
		breakers:   make([]*resilience.Breaker, cfg.Cells),
		downNow:    make([]bool, cfg.Cells),
		rerouteTo:  make([]int, cfg.Cells),
	}
	for c := range sys.rerouteTo {
		sys.rerouteTo[c] = c
	}
	if cfg.Workers > 0 {
		sys.workers = cfg.Workers
	}
	var ring *obs.TraceRing
	var shards []*obs.StationMetrics
	if cfg.Metrics != nil {
		ring = cfg.Metrics.Station.Trace
		shards = make([]*obs.StationMetrics, cfg.Cells)
		for c := range shards {
			shards[c] = cfg.Metrics.CellShard(c)
		}
		sys.merger = obs.NewShardMerger(cfg.Metrics.Station, shards)
	}
	if cfg.Dissemination != dissemination.OnDemand {
		for c := 0; c < cfg.Cells; c++ {
			dcfg := dissemination.Config{
				Catalog:  cat,
				Strategy: cfg.Dissemination,
				Knobs:    cfg.DisseminationKnobs,
				// The same golden-ratio chain scheduleFor uses, so sleep
				// draws are per-cell streams independent of the workload.
				Seed: cfg.Seed + uint64(c)*0x9e3779b97f4a7c15,
			}
			if shards != nil {
				dcfg.Metrics = shards[c]
			}
			if cfg.FetchFaults != nil {
				sched, err := cfg.FetchFaults(c)
				if err != nil {
					return nil, fmt.Errorf("multicell: cell %d fault schedule: %w", c, err)
				}
				fs, err := server.NewFaultyServer(srv, sched, nil)
				if err != nil {
					return nil, err
				}
				dcfg.Fetcher = fs
				dcfg.Retry = cfg.Retry
			}
			dc, err := dissemination.New(dcfg)
			if err != nil {
				return nil, fmt.Errorf("multicell: cell %d: %w", c, err)
			}
			sys.dcells = append(sys.dcells, dc)
		}
		sys.dcellStart = make([]dissemination.Stats, cfg.Cells)
		return finishNew(sys, cfg)
	}
	for c := 0; c < cfg.Cells; c++ {
		scfg := core.Config{Solver: cfg.Solver, Trace: ring}
		if shards != nil {
			scfg.FullResolves = shards[c].SolverFullResolves
			scfg.WarmResolves = shards[c].SolverWarmResolves
		}
		sel, err := core.NewSelector(cat, scfg)
		if err != nil {
			return nil, err
		}
		pol, err := policy.NewOnDemandKnapsack(sel)
		if err != nil {
			return nil, err
		}
		var sm *obs.StationMetrics
		if shards != nil {
			sm = shards[c]
		}
		bcfg := basestation.Config{
			Catalog:          cat,
			Server:           srv,
			Policy:           pol,
			BudgetPerTick:    cfg.BudgetPerTick,
			CompulsoryMisses: true,
			Metrics:          sm,
		}
		needFetcher := cfg.FetchFaults != nil ||
			(cfg.Resilience != nil && cfg.Resilience.Breaker.Enabled())
		if needFetcher {
			sched := fault.MustSchedule(1, cfg.Seed)
			if cfg.FetchFaults != nil {
				var err error
				if sched, err = cfg.FetchFaults(c); err != nil {
					return nil, fmt.Errorf("multicell: cell %d fault schedule: %w", c, err)
				}
			}
			fs, err := server.NewFaultyServer(srv, sched, nil)
			if err != nil {
				return nil, err
			}
			bcfg.Fetcher = fs
			bcfg.Retry = cfg.Retry
		}
		if cfg.Resilience != nil {
			if cfg.Resilience.Breaker.Enabled() {
				b, err := resilience.NewBreaker(cfg.Resilience.Breaker)
				if err != nil {
					return nil, fmt.Errorf("multicell: %w", err)
				}
				sys.breakers[c] = b
				bcfg.Breaker = b
			}
			bcfg.Admission = cfg.Resilience.Admission
		}
		st, err := basestation.New(bcfg)
		if err != nil {
			return nil, err
		}
		sys.stations = append(sys.stations, st)
	}
	return finishNew(sys, cfg)
}

// finishNew attaches the mobile population and the request-generation
// visitor — the parts shared by the station and dissemination builds.
func finishNew(sys *System, cfg Config) (*System, error) {
	pop, err := client.NewPopulation(cfg.Clients, cfg.Cells, cfg.Mobility, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	sys.pop = pop
	// The request-generation visitor is built once so the per-tick
	// population walk allocates no closure. Every draw comes from the
	// client's HOME cell stream even when the request is rerouted to a
	// neighbour, so cell failures never shift any cell's random
	// sequence — a schedule with no active outage reproduces the
	// fault-free run bit for bit.
	sys.genVisit = func(i, cell int) {
		sys.connected++
		src := sys.cellSrc[cell]
		if !src.Bernoulli(sys.cfg.RequestProb) {
			return
		}
		obj := catalog.ID(sys.sampler.Sample(src))
		target := sys.rerouteTo[cell]
		if target < 0 {
			// Every cell is down: the request is lost outright.
			sys.lostNow++
			return
		}
		if target != cell {
			sys.reroutesNow++
		}
		sys.perCell[target] = append(sys.perCell[target], client.Request{
			Client: i,
			Object: obj,
			Target: 1,
			Tick:   sys.genTick,
		})
	}
	return sys, nil
}

// Station returns cell c's base station (for inspection).
func (s *System) Station(c int) *basestation.Station { return s.stations[c] }

// Workers returns the worker count the parallel phase runs with.
func (s *System) Workers() int { return s.workers }

// Run executes n ticks and returns the aggregated report. Repeated Runs
// continue the same deployment but restart the tick clock (and therefore
// the update schedule) at zero; totals cover only the latest Run.
func (s *System) Run(n int) (Report, error) { return s.RunSampled(n, nil) }

// RunSampled is Run with a per-tick observer: after every tick, sample
// (when non-nil) receives the 1-based tick count and the report
// aggregated so far. Sampling never perturbs the run — the final report
// is byte-identical to Run(n)'s — but building each intermediate report
// allocates, so it is for offline harnesses (the experiment runner's
// per-tick CSVs), not the hot path. A non-nil error from sample aborts
// the run and is returned.
func (s *System) RunSampled(n int, sample func(ticks int, rep Report) error) (Report, error) {
	for i := range s.cellTotals {
		s.cellTotals[i] = basestation.Totals{}
	}
	for c, dc := range s.dcells {
		s.dcellStart[c] = dc.Stats()
	}
	s.reroutes, s.lost, s.cellDownTicks = 0, 0, 0
	for tick := 0; tick < n; tick++ {
		if err := s.tick(tick); err != nil {
			return Report{}, err
		}
		if sample != nil {
			if err := sample(tick+1, s.report(tick+1)); err != nil {
				return Report{}, err
			}
		}
	}
	return s.report(n), nil
}

// report aggregates the per-cell totals of the current Run into a
// Report covering its first n ticks.
func (s *System) report(n int) Report {
	var rep Report
	rep.Ticks = n
	rep.Handoffs = s.pop.Handoffs()
	rep.Drops = s.pop.Drops()
	rep.SharedCopies = s.shared
	rep.SharedCopyFailures = s.sharedFailures
	rep.Reroutes = s.reroutes
	rep.LostRequests = s.lost
	rep.CellDownTicks = s.cellDownTicks
	var scoreSum, recencySum float64
	for c := range s.cellTotals {
		t := &s.cellTotals[c]
		rep.Requests += t.Requests
		rep.Downloads += t.Downloads()
		scoreSum += t.ScoreSum
		recencySum += t.RecencySum
		rep.PerCellScores = append(rep.PerCellScores, t.MeanScore())
		rep.PerCellRequests = append(rep.PerCellRequests, t.Requests)
		rep.PerCellDownloads = append(rep.PerCellDownloads, t.Downloads())
		rep.ShedRequests += t.Shed
		rep.ShortCircuits += t.ShortCircuits
		rep.BreakerTrips += t.BreakerTrips
		rep.FailedDownloads += t.FailedDownloads
		rep.StaleFallbacks += t.StaleFallbacks
	}
	if rep.Requests > 0 {
		rep.MeanScore = scoreSum / float64(rep.Requests)
		rep.MeanRecency = recencySum / float64(rep.Requests)
	}
	if s.dcells != nil {
		rep.Dissemination = s.cfg.Dissemination.String()
		for c, dc := range s.dcells {
			st, start := dc.Stats(), s.dcellStart[c]
			rep.InvalidationReports += st.ReportsBroadcast - start.ReportsBroadcast
			rep.InvalidatedEntries += st.Invalidated - start.Invalidated
			rep.TerminalPurges += st.Purges - start.Purges
			rep.PushServed += st.PushServed - start.PushServed
			rep.PullServed += st.PullServed - start.PullServed
			rep.PushUnits += st.PushUnits - start.PushUnits
		}
	}
	return rep
}

// tick advances the system one time unit: the serial phase (mobility,
// server updates, request generation, sharing snapshot), the parallel
// phase (ServeTick fanned across cells), and the metrics merge.
func (s *System) tick(tick int) error {
	// Serial phase. Mobility and the shared server tick first: the
	// server's OnUpdate callbacks decay every cell's cache, which must
	// finish before any cell serves.
	s.pop.Tick()
	updated := s.srv.Tick(tick)

	// Cell-failure view for this tick: downtime is a pure function of
	// (cell, tick), and a down cell's requests are rerouted to the
	// nearest live cell scanning upward mod Cells (-1 if none is live).
	if cf := s.cfg.CellFaults; cf != nil {
		down := 0
		for c := range s.downNow {
			s.downNow[c] = cf.Down(c, tick)
			if s.downNow[c] {
				down++
				s.cellDownTicks++
			}
		}
		n := len(s.rerouteTo)
		for c := range s.rerouteTo {
			s.rerouteTo[c] = c
			if !s.downNow[c] {
				continue
			}
			s.rerouteTo[c] = -1
			for k := 1; k < n; k++ {
				if t := (c + k) % n; !s.downNow[t] {
					s.rerouteTo[c] = t
					break
				}
			}
		}
		if m := s.cfg.Metrics; m != nil {
			m.CellsDown.Set(float64(down))
			m.CellDownTicks.Add(uint64(down))
		}
	}

	// Connected clients issue requests to their cell's station, each
	// drawn from the cell's private stream.
	for c := range s.perCell {
		s.perCell[c] = s.perCell[c][:0]
	}
	s.connected = 0
	s.genTick = tick
	s.reroutesNow, s.lostNow = 0, 0
	s.pop.ForEachConnected(s.genVisit)
	s.reroutes += uint64(s.reroutesNow)
	s.lost += uint64(s.lostNow)

	if m := s.cfg.Metrics; m != nil {
		m.Connected.Set(float64(s.connected))
		m.Handoffs.Add(s.pop.Handoffs() - s.lastHandoffs)
		m.Drops.Add(s.pop.Drops() - s.lastDrops)
		s.lastHandoffs, s.lastDrops = s.pop.Handoffs(), s.pop.Drops()
		if s.reroutesNow > 0 {
			m.Reroutes.Add(uint64(s.reroutesNow))
		}
		if s.lostNow > 0 {
			m.LostRequests.Add(uint64(s.lostNow))
		}
	}

	if s.cfg.CacheSharing {
		// Sharing snapshot: gather every cell's copies against the
		// pre-tick cache state, then apply them all. No cell observes a
		// neighbour's same-tick copies, so the outcome is independent of
		// cell order — and of the worker count in the phase below.
		for c := range s.stations {
			s.gatherShared(c, s.perCell[c])
		}
		s.applyShared(float64(tick))
	}

	// Parallel phase: every cell serves its tick against private state
	// (cache, policy, metrics shard); the shared server only sees
	// concurrency-safe Downloads. Workers == 1 keeps the loop free of
	// goroutines entirely.
	cells := len(s.results)
	if s.workers == 1 || cells == 1 {
		for c := 0; c < cells; c++ {
			if err := s.serveCell(c, tick, updated); err != nil {
				return err
			}
		}
	} else {
		if err := parallel.ForEach(cells, s.workers, func(c int) error {
			return s.serveCell(c, tick, updated)
		}); err != nil {
			return err
		}
	}
	for c := range s.results {
		s.cellTotals[c].Add(s.results[c])
	}

	if m := s.cfg.Metrics; m != nil {
		// The engine owns the aggregate's tick and update counters (one
		// engine tick, one batch of master updates — not one per cell);
		// everything else flows in from the per-cell shards.
		m.Station.Ticks.Inc()
		m.Station.ServerUpdates.Add(uint64(len(updated)))
		s.merger.Merge()
		if s.cfg.Resilience != nil {
			// Aggregate gauges report the deployment's worst cell: the
			// most degraded service mode and the most open breaker.
			// Gauges aren't shard-merged (sums would be meaningless), so
			// the engine sets them after the counter merge.
			var worstMode resilience.Mode
			for c := range s.results {
				if s.downNow[c] {
					continue
				}
				if m := s.results[c].Mode; m > worstMode {
					worstMode = m
				}
			}
			m.Station.ServiceMode.Set(float64(worstMode))
			if s.breakers[0] != nil {
				var worst resilience.State
				for _, b := range s.breakers {
					if st := b.State(tick); st > worst {
						worst = st
					}
				}
				m.Station.BreakerState.Set(float64(worst))
			}
		}
	}
	return nil
}

// serveCell serves cell c's tick through whichever engine backs it,
// writing the order-stable result slot. A cell inside an outage window
// serves nothing; a down dissemination cell still observes the tick's
// master updates (server-side knowledge — the downed base station's
// update history keeps accumulating, so its post-recovery report names
// everything its terminals slept through and staleness accounting stays
// honest).
func (s *System) serveCell(c, tick int, updated []catalog.ID) error {
	if s.downNow[c] {
		s.results[c] = basestation.TickResult{Tick: tick}
		if s.dcells != nil {
			s.dcells[c].ObserveUpdates(tick, updated)
		}
		return nil
	}
	var res basestation.TickResult
	var err error
	if s.dcells != nil {
		res, err = s.dcells[c].ServeTick(tick, s.perCell[c], updated)
	} else {
		res, err = s.stations[c].ServeTick(tick, s.perCell[c], updated)
	}
	if err != nil {
		return fmt.Errorf("multicell: cell %d: %w", c, err)
	}
	s.results[c] = res
	return nil
}

// gatherShared scans cell's requested-but-locally-absent objects against
// the pre-tick snapshot of the neighbour caches and queues a copy of the
// freshest remote entry (ties to the lowest donor cell) for applyShared.
func (s *System) gatherShared(cell int, reqs []client.Request) {
	local := s.stations[cell].Cache()
	for _, r := range reqs {
		if s.seen[r.Object] || local.Contains(r.Object) {
			continue
		}
		s.seen[r.Object] = true
		s.seenIDs = append(s.seenIDs, r.Object)
		var best *cache.Entry
		for o, other := range s.stations {
			// A down cell donates nothing: its station is unreachable
			// over the fixed network, cache contents notwithstanding.
			if o == cell || s.downNow[o] {
				continue
			}
			if e, ok := other.Cache().Peek(r.Object); ok {
				if best == nil || e.Recency > best.Recency {
					best = e
				}
			}
		}
		if best != nil {
			s.pending = append(s.pending, shareOp{cell: cell, src: best})
		}
	}
	for _, id := range s.seenIDs {
		s.seen[id] = false
	}
	s.seenIDs = s.seenIDs[:0]
}

// applyShared installs the gathered copies. A rejected copy (a bounded
// local cache can refuse the insert) is counted, not dropped silently:
// cooperative sharing that quietly does nothing looks identical to a
// neighbourhood with no useful copies.
func (s *System) applyShared(now float64) {
	m := s.cfg.Metrics
	for _, op := range s.pending {
		if err := s.stations[op.cell].Cache().PutCopy(op.src, now); err != nil {
			s.sharedFailures++
			if m != nil {
				m.SharedCopyFailures.Inc()
			}
			continue
		}
		s.shared++
		if m != nil {
			m.SharedCopies.Inc()
		}
	}
	s.pending = s.pending[:0]
}
