package multicell

import (
	"testing"

	"mobicache/internal/client"
	"mobicache/internal/rng"
)

func baseConfig() Config {
	return Config{
		Cells:         3,
		Objects:       100,
		UpdatePeriod:  5,
		BudgetPerTick: 10,
		Clients:       120,
		Mobility:      client.Mobility{MeanResidence: 20, PDisconnect: 0.2, MeanAbsence: 10},
		RequestProb:   0.3,
		Pattern:       rng.Zipf,
		Seed:          1,
	}
}

func TestNewValidation(t *testing.T) {
	bad := baseConfig()
	bad.Cells = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero cells accepted")
	}
	bad = baseConfig()
	bad.Objects = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero objects accepted")
	}
	bad = baseConfig()
	bad.Clients = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero clients accepted")
	}
	bad = baseConfig()
	bad.RequestProb = 1.5
	if _, err := New(bad); err == nil {
		t.Fatal("bad probability accepted")
	}
}

func TestRunBasics(t *testing.T) {
	sys, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ticks != 200 {
		t.Fatalf("ticks = %d", rep.Ticks)
	}
	if rep.Requests == 0 || rep.Downloads == 0 {
		t.Fatalf("no activity: %+v", rep)
	}
	if rep.MeanScore <= 0 || rep.MeanScore > 1 {
		t.Fatalf("mean score = %v", rep.MeanScore)
	}
	if rep.MeanRecency <= 0 || rep.MeanRecency > 1 {
		t.Fatalf("mean recency = %v", rep.MeanRecency)
	}
	if rep.Handoffs == 0 {
		t.Fatal("no handoffs with fast mobility")
	}
	if len(rep.PerCellScores) != 3 {
		t.Fatalf("per-cell scores = %v", rep.PerCellScores)
	}
	for c, sc := range rep.PerCellScores {
		if sc <= 0 || sc > 1 {
			t.Fatalf("cell %d score = %v", c, sc)
		}
	}
	if rep.SharedCopies != 0 {
		t.Fatal("sharing disabled but copies recorded")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(baseConfig())
	rb, err := b.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Requests != rb.Requests || ra.Downloads != rb.Downloads || ra.MeanScore != rb.MeanScore {
		t.Fatalf("same-seed systems differ:\n%+v\n%+v", ra, rb)
	}
}

func TestCacheSharingReducesServerDownloads(t *testing.T) {
	run := func(sharing bool) Report {
		cfg := baseConfig()
		cfg.CacheSharing = sharing
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run(300)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	without := run(false)
	with := run(true)
	if with.SharedCopies == 0 {
		t.Fatal("sharing enabled but no copies made")
	}
	// A shared copy avoids a compulsory miss download, so the server sees
	// fewer downloads overall.
	if with.Downloads >= without.Downloads {
		t.Fatalf("sharing did not reduce server downloads: %d >= %d",
			with.Downloads, without.Downloads)
	}
	if with.MeanScore <= 0 {
		t.Fatalf("sharing score = %v", with.MeanScore)
	}
}

func TestStationAccessor(t *testing.T) {
	sys, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Station(0) == nil || sys.Station(2) == nil {
		t.Fatal("stations missing")
	}
}
