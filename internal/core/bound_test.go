package core

import (
	"testing"

	"mobicache/internal/cache"
	"mobicache/internal/catalog"
	"mobicache/internal/client"
)

func boundFixture(t *testing.T) (*Selector, []Demand, *cache.Cache, int64) {
	t.Helper()
	sizes := make([]int64, 20)
	for i := range sizes {
		sizes[i] = int64(i%5 + 1)
	}
	cat := catalog.MustNew(sizes)
	lags := map[catalog.ID]int{}
	for _, id := range cat.IDs() {
		lags[id] = int(id)%7 + 1
	}
	c := freshCache(cat, lags)
	var reqs []client.Request
	for _, id := range cat.IDs() {
		for k := 0; k <= int(id)%3; k++ {
			reqs = append(reqs, client.Request{Object: id, Target: 1})
		}
	}
	s, err := NewSelector(cat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s, Aggregate(reqs), c, cat.TotalSize()
}

func TestUpperBoundFullGainDefault(t *testing.T) {
	s, demands, c, maxB := boundFixture(t)
	rep, err := s.UpperBound(demands, c, maxB, BoundConfig{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GainAtBudget != rep.MaxGain {
		t.Fatalf("default rules stopped early: gain %v of %v", rep.GainAtBudget, rep.MaxGain)
	}
	if rep.Budget > maxB {
		t.Fatalf("budget %d beyond probe %d", rep.Budget, maxB)
	}
	if rep.Efficiency() != 1 {
		t.Fatalf("efficiency = %v, want 1", rep.Efficiency())
	}
	// The full gain is typically reached before the entire catalog size.
	if rep.Trace == nil {
		t.Fatal("report missing trace")
	}
}

func TestUpperBoundFractionRule(t *testing.T) {
	s, demands, c, maxB := boundFixture(t)
	full, err := s.UpperBound(demands, c, maxB, BoundConfig{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.UpperBound(demands, c, maxB, BoundConfig{FractionOfMax: 0.8, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Budget > full.Budget {
		t.Fatalf("80%% budget %d exceeds full budget %d", rep.Budget, full.Budget)
	}
	if rep.Efficiency() < 0.8 {
		t.Fatalf("efficiency %v below requested fraction", rep.Efficiency())
	}
}

func TestUpperBoundMarginalRule(t *testing.T) {
	s, demands, c, maxB := boundFixture(t)
	// A very high marginal threshold stops almost immediately.
	rep, err := s.UpperBound(demands, c, maxB, BoundConfig{MinMarginal: 1e6, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Budget > 2 {
		t.Fatalf("huge marginal threshold still recommended budget %d", rep.Budget)
	}
	// A tiny threshold should recommend (nearly) the full-gain budget.
	tiny, err := s.UpperBound(demands, c, maxB, BoundConfig{MinMarginal: 1e-12, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Efficiency() < 0.99 {
		t.Fatalf("tiny threshold efficiency = %v", tiny.Efficiency())
	}
}

func TestUpperBoundValidation(t *testing.T) {
	s, demands, c, _ := boundFixture(t)
	if _, err := s.UpperBound(demands, c, -1, BoundConfig{}); err == nil {
		t.Fatal("negative max budget accepted")
	}
	if _, err := s.UpperBound(demands, c, 10, BoundConfig{MinMarginal: -1}); err == nil {
		t.Fatal("negative marginal accepted")
	}
	if _, err := s.UpperBound(demands, c, 10, BoundConfig{FractionOfMax: 2}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestUpperBoundEmptyDemands(t *testing.T) {
	s, _, c, _ := boundFixture(t)
	rep, err := s.UpperBound(nil, c, 100, BoundConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxGain != 0 || rep.Budget != 0 {
		t.Fatalf("empty-demand report = %+v", rep)
	}
	if rep.Efficiency() != 1 {
		t.Fatalf("empty-demand efficiency = %v", rep.Efficiency())
	}
}

func TestUpperBoundDefaultWindow(t *testing.T) {
	s, demands, c, maxB := boundFixture(t)
	rep, err := s.UpperBound(demands, c, maxB, BoundConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Budget < 0 || rep.Budget > maxB {
		t.Fatalf("budget %d out of range", rep.Budget)
	}
}
