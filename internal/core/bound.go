package core

import (
	"fmt"

	"mobicache/internal/knapsack"
)

// BoundConfig tunes the upper-bound recommendation (the paper's §6 future
// work: "techniques to determine how much data the base station should
// download to satisfy a set of requests").
type BoundConfig struct {
	// MinMarginal stops raising the budget once the average score gain
	// per additional data unit over the entire remaining budget falls
	// below this value — i.e. once even the best use of every further
	// unit pays less than MinMarginal per unit. The forward-looking
	// average makes the rule robust to the staircase shape of the exact
	// knapsack curve (integral weights mean the gain arrives in jumps).
	// Zero disables the marginal rule.
	MinMarginal float64
	// Window is the step at which candidate budgets are examined;
	// defaults to 1/100 of the max budget (min 1).
	Window int64
	// FractionOfMax stops once this fraction of the maximum attainable
	// gain is reached. Zero disables the fraction rule. With both rules
	// disabled the recommendation is the budget achieving the full gain.
	FractionOfMax float64
}

// BoundReport is the outcome of UpperBound.
type BoundReport struct {
	// Budget is the recommended upper bound on downloaded data units.
	Budget int64
	// GainAtBudget is the score gain attainable at the recommendation.
	GainAtBudget float64
	// MaxGain is the gain attainable at the full probe budget.
	MaxGain float64
	// Trace is the underlying best-gain-per-budget curve.
	Trace *knapsack.Trace
}

// Efficiency returns the fraction of the maximum gain the recommended
// budget attains (1 if there is nothing to gain).
func (b BoundReport) Efficiency() float64 {
	if b.MaxGain == 0 {
		return 1
	}
	return b.GainAtBudget / b.MaxGain
}

// UpperBound recommends how much data to download for a batch: it traces
// the exact solution-quality curve up to maxBudget and picks the smallest
// budget at which continuing is no longer worthwhile under cfg's rules.
func (s *Selector) UpperBound(demands []Demand, c CacheView, maxBudget int64, cfg BoundConfig) (BoundReport, error) {
	if maxBudget < 0 {
		return BoundReport{}, fmt.Errorf("core: negative max budget %d", maxBudget)
	}
	if cfg.MinMarginal < 0 || cfg.FractionOfMax < 0 || cfg.FractionOfMax > 1 {
		return BoundReport{}, fmt.Errorf("core: invalid bound config %+v", cfg)
	}
	tr, _, err := s.Trace(demands, c, maxBudget)
	if err != nil {
		return BoundReport{}, err
	}
	window := cfg.Window
	if window <= 0 {
		window = maxBudget / 100
		if window < 1 {
			window = 1
		}
	}
	maxGain := tr.At(maxBudget)
	report := BoundReport{Trace: tr, MaxGain: maxGain}

	budget := maxBudget // fall back to "everything helps"
	for b := int64(0); b <= maxBudget; b += window {
		gain := tr.At(b)
		// The epsilon absorbs rounding in gain/maxGain products so the
		// reported efficiency never lands microscopically below the
		// requested fraction.
		if cfg.FractionOfMax > 0 && gain >= cfg.FractionOfMax*maxGain-1e-9*maxGain {
			budget = b
			break
		}
		if cfg.MinMarginal > 0 && b < maxBudget {
			remaining := (maxGain - gain) / float64(maxBudget-b)
			if remaining < cfg.MinMarginal {
				budget = b
				break
			}
		}
		if gain >= maxGain {
			budget = b
			break
		}
	}
	report.Budget = budget
	report.GainAtBudget = tr.At(budget)
	return report, nil
}
