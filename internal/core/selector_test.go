package core

import (
	"math"
	"testing"
	"testing/quick"

	"mobicache/internal/cache"
	"mobicache/internal/catalog"
	"mobicache/internal/client"
	"mobicache/internal/recency"
	"mobicache/internal/rng"
)

func testCatalog(sizes ...int64) *catalog.Catalog {
	return catalog.MustNew(sizes)
}

func freshCache(cat *catalog.Catalog, lags map[catalog.ID]int) *cache.Cache {
	c := cache.Unlimited()
	for _, id := range cat.IDs() {
		if err := c.Put(id, cat.Size(id), 0, 0); err != nil {
			panic(err)
		}
	}
	for id, lag := range lags {
		for i := 0; i < lag; i++ {
			c.OnMasterUpdate(id)
		}
	}
	return c
}

func TestAggregate(t *testing.T) {
	reqs := []client.Request{
		{Client: 0, Object: 2, Target: 1},
		{Client: 1, Object: 5, Target: 0.5},
		{Client: 2, Object: 2, Target: 0.8},
	}
	ds := Aggregate(reqs)
	if len(ds) != 2 {
		t.Fatalf("aggregated %d demands, want 2", len(ds))
	}
	if ds[0].Object != 2 || ds[0].Count() != 2 {
		t.Fatalf("demand 0 = %+v", ds[0])
	}
	if ds[1].Object != 5 || ds[1].Count() != 1 {
		t.Fatalf("demand 1 = %+v", ds[1])
	}
	if ds[0].Targets[0] != 1 || ds[0].Targets[1] != 0.8 {
		t.Fatalf("targets = %v", ds[0].Targets)
	}
	if got := Aggregate(nil); len(got) != 0 {
		t.Fatalf("Aggregate(nil) = %v", got)
	}
}

func TestNewSelectorValidation(t *testing.T) {
	if _, err := NewSelector(nil, Config{}); err == nil {
		t.Fatal("nil catalog accepted")
	}
	cat := testCatalog(1)
	if _, err := NewSelector(cat, Config{Eps: -0.5}); err == nil {
		t.Fatal("negative eps accepted")
	}
	if _, err := NewSelector(cat, Config{Eps: 2}); err == nil {
		t.Fatal("eps >= 1 accepted")
	}
	if _, err := NewSelector(cat, Config{Solver: SolverKind(42)}); err == nil {
		t.Fatal("bogus solver accepted")
	}
}

func TestSolverKindString(t *testing.T) {
	if SolverDP.String() != "dp" || SolverGreedy.String() != "greedy" || SolverFPTAS.String() != "fptas" {
		t.Fatal("solver names wrong")
	}
	if SolverKind(9).String() != "SolverKind(9)" {
		t.Fatal("unknown solver name wrong")
	}
}

func TestSelectAllFreshDownloadsNothing(t *testing.T) {
	cat := testCatalog(1, 1, 1)
	c := freshCache(cat, nil)
	s, err := NewSelector(cat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []client.Request{{Object: 0, Target: 1}, {Object: 2, Target: 1}}
	plan, err := s.Select(Aggregate(reqs), c, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Download) != 0 {
		t.Fatalf("fresh cache but planned downloads %v", plan.Download)
	}
	if len(plan.FromCache) != 2 {
		t.Fatalf("FromCache = %v", plan.FromCache)
	}
	if got := plan.AverageScore(); got != 1 {
		t.Fatalf("AverageScore = %v, want 1", got)
	}
	if plan.Requests != 2 || plan.DownloadUnits != 0 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestSelectStaleObjectsWithinBudget(t *testing.T) {
	cat := testCatalog(3, 3, 3)
	// Objects 0 and 2 stale, 1 fresh.
	c := freshCache(cat, map[catalog.ID]int{0: 2, 2: 5})
	s, _ := NewSelector(cat, Config{})
	reqs := []client.Request{
		{Object: 0, Target: 1}, {Object: 1, Target: 1}, {Object: 2, Target: 1},
	}
	// Budget fits exactly one download: the staler object 2 yields the
	// higher benefit.
	plan, err := s.Select(Aggregate(reqs), c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Download) != 1 || plan.Download[0] != 2 {
		t.Fatalf("Download = %v, want [2]", plan.Download)
	}
	if plan.DownloadUnits != 3 {
		t.Fatalf("DownloadUnits = %d", plan.DownloadUnits)
	}
	// FromCache holds the other two requested objects.
	if len(plan.FromCache) != 2 {
		t.Fatalf("FromCache = %v", plan.FromCache)
	}
	// Score: obj1 fresh (1.0), obj2 downloaded (1.0), obj0 cached at
	// recency 1/3 with target 1 → Inverse(1/3, 1) = 1/(1+2/3) = 0.6.
	want := (1.0 + 1.0 + 0.6) / 3
	if got := plan.AverageScore(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("AverageScore = %v, want %v", got, want)
	}
}

func TestSelectPopularityRaisesProfit(t *testing.T) {
	cat := testCatalog(2, 2)
	c := freshCache(cat, map[catalog.ID]int{0: 1, 1: 1}) // equally stale
	s, _ := NewSelector(cat, Config{})
	// Object 1 requested by three clients, object 0 by one.
	reqs := []client.Request{
		{Object: 0, Target: 1},
		{Object: 1, Target: 1}, {Object: 1, Target: 1}, {Object: 1, Target: 1},
	}
	plan, err := s.Select(Aggregate(reqs), c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Download) != 1 || plan.Download[0] != 1 {
		t.Fatalf("Download = %v, want the popular object [1]", plan.Download)
	}
}

func TestSelectAbsentObjectMustDownload(t *testing.T) {
	cat := testCatalog(1, 1)
	c := cache.Unlimited() // empty: nothing cached
	s, _ := NewSelector(cat, Config{})
	reqs := []client.Request{{Object: 0, Target: 0.1}}
	plan, err := s.Select(Aggregate(reqs), c, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Even with a tiny target, an absent object has cache score 0 and
	// benefit 1.
	if len(plan.Download) != 1 || plan.Download[0] != 0 {
		t.Fatalf("Download = %v, want [0]", plan.Download)
	}
	if plan.CachedScore != 0 || math.Abs(plan.Gain-1) > 1e-12 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestSelectUnlimitedBudget(t *testing.T) {
	cat := testCatalog(5, 7, 9)
	c := freshCache(cat, map[catalog.ID]int{0: 1, 1: 1, 2: 1})
	s, _ := NewSelector(cat, Config{})
	reqs := []client.Request{{Object: 0, Target: 1}, {Object: 1, Target: 1}, {Object: 2, Target: 1}}
	plan, err := s.Select(Aggregate(reqs), c, Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Download) != 3 {
		t.Fatalf("unlimited budget downloaded %v", plan.Download)
	}
	if plan.AverageScore() != 1 {
		t.Fatalf("AverageScore = %v, want 1", plan.AverageScore())
	}
	if plan.DownloadUnits != 21 {
		t.Fatalf("DownloadUnits = %d, want 21", plan.DownloadUnits)
	}
}

func TestSelectNegativeBudget(t *testing.T) {
	cat := testCatalog(1)
	s, _ := NewSelector(cat, Config{})
	if _, err := s.Select(nil, cache.Unlimited(), -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestSelectSkipsInvalidObjects(t *testing.T) {
	cat := testCatalog(1)
	s, _ := NewSelector(cat, Config{})
	plan, err := s.Select([]Demand{{Object: 99, Targets: []float64{1}}}, cache.Unlimited(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Download) != 0 || plan.Requests != 0 {
		t.Fatalf("plan for invalid object = %+v", plan)
	}
}

func TestSelectSolversAgreeOnEasyInstances(t *testing.T) {
	cat := testCatalog(2, 3, 4, 5, 6)
	c := freshCache(cat, map[catalog.ID]int{0: 1, 1: 2, 2: 3, 3: 4, 4: 5})
	var reqs []client.Request
	for id := 0; id < 5; id++ {
		reqs = append(reqs, client.Request{Object: catalog.ID(id), Target: 1})
	}
	demands := Aggregate(reqs)
	var gains []float64
	for _, kind := range []SolverKind{SolverDP, SolverGreedy, SolverFPTAS} {
		s, err := NewSelector(cat, Config{Solver: kind, Eps: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := s.Select(demands, c, 20)
		if err != nil {
			t.Fatal(err)
		}
		gains = append(gains, plan.Gain)
	}
	dp := gains[0]
	if gains[1] < 0.5*dp || gains[2] < 0.98*dp {
		t.Fatalf("solver gains %v violate guarantees vs DP %v", gains, dp)
	}
}

func TestSelectScoreFunctionMatters(t *testing.T) {
	cat := testCatalog(1)
	c := freshCache(cat, map[catalog.ID]int{0: 3}) // recency 0.25
	demands := []Demand{{Object: 0, Targets: []float64{1}}}
	inv, _ := NewSelector(cat, Config{Score: recency.Inverse})
	exp, _ := NewSelector(cat, Config{Score: recency.Exponential})
	pInv, _ := inv.Select(demands, c, 0)
	pExp, _ := exp.Select(demands, c, 0)
	// With budget 0 nothing downloads; scores differ by function.
	wantInv := recency.Inverse(0.25, 1)
	wantExp := recency.Exponential(0.25, 1)
	if math.Abs(pInv.AverageScore()-wantInv) > 1e-12 {
		t.Fatalf("inverse score = %v, want %v", pInv.AverageScore(), wantInv)
	}
	if math.Abs(pExp.AverageScore()-wantExp) > 1e-12 {
		t.Fatalf("exponential score = %v, want %v", pExp.AverageScore(), wantExp)
	}
}

func TestSelectMonotoneInBudgetProperty(t *testing.T) {
	// Property: average score never decreases as the budget grows, and
	// download size never exceeds the budget.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.IntRange(1, 12)
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = int64(r.IntRange(1, 9))
		}
		cat := catalog.MustNew(sizes)
		lags := map[catalog.ID]int{}
		for _, id := range cat.IDs() {
			lags[id] = r.IntRange(0, 6)
		}
		c := freshCache(cat, lags)
		var reqs []client.Request
		for k := 0; k < r.IntRange(1, 30); k++ {
			reqs = append(reqs, client.Request{
				Client: k,
				Object: catalog.ID(r.Intn(n)),
				Target: r.FloatRange(0.1, 1),
			})
		}
		demands := Aggregate(reqs)
		s, err := NewSelector(cat, Config{})
		if err != nil {
			return false
		}
		prev := -1.0
		for b := int64(0); b <= cat.TotalSize(); b += 3 {
			plan, err := s.Select(demands, c, b)
			if err != nil {
				return false
			}
			if plan.DownloadUnits > b {
				return false
			}
			score := plan.AverageScore()
			if score < prev-1e-9 {
				return false
			}
			prev = score
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceConsistentWithSelect(t *testing.T) {
	cat := testCatalog(2, 3, 5, 7)
	c := freshCache(cat, map[catalog.ID]int{0: 1, 1: 3, 2: 2, 3: 4})
	var reqs []client.Request
	for id := 0; id < 4; id++ {
		for k := 0; k <= id; k++ {
			reqs = append(reqs, client.Request{Object: catalog.ID(id), Target: 1})
		}
	}
	demands := Aggregate(reqs)
	s, _ := NewSelector(cat, Config{})
	tr, base, err := s.Trace(demands, c, 17)
	if err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b <= 17; b += 2 {
		plan, err := s.Select(demands, c, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tr.At(b)-plan.Gain) > 1e-9 {
			t.Fatalf("trace gain at %d = %v, Select gain = %v", b, tr.At(b), plan.Gain)
		}
		if base.Requests != plan.Requests || math.Abs(base.CachedScore-plan.CachedScore) > 1e-9 {
			t.Fatal("base plan differs between Trace and Select")
		}
	}
}

func TestPlanAverageScoreEmpty(t *testing.T) {
	var p Plan
	if p.AverageScore() != 0 {
		t.Fatal("empty plan AverageScore != 0")
	}
}
