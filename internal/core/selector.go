// Package core implements the paper's primary contribution: the on-demand
// download selector. Given the batch of client requests a base station has
// accumulated, the state of its cache, and an upper bound on how much data
// may be downloaded from the fixed network, the selector decides which
// objects to access remotely and which to serve from the (possibly stale)
// cache so as to maximize the mean client recency score.
//
// The mapping to 0/1 knapsack follows Section 2 of the paper exactly: each
// candidate object u is an item of weight size(u); its profit is the sum,
// over the clients requesting u, of the benefit of downloading —
// 1 − f_C(x), where x is the cached copy's recency score and C the
// client's target recency. Objects not in the cache at all must be
// downloaded to be served; they enter the knapsack with per-client benefit
// 1 (score 0 from the cache).
//
// The package also implements the paper's future-work extension: choosing
// the upper bound itself. UpperBound inspects the dynamic program's
// best-score-per-budget curve and picks the smallest budget at which the
// marginal gain per data unit falls below a threshold (or a fraction of
// the maximum attainable score is reached), formalizing the paper's
// observation that "under some circumstances there is not a great benefit
// to downloading large amounts of data".
package core

import (
	"fmt"
	"math"
	"sort"

	"mobicache/internal/catalog"
	"mobicache/internal/client"
	"mobicache/internal/knapsack"
	"mobicache/internal/recency"
)

// Unlimited is the budget value meaning "no limit on downloaded data".
const Unlimited int64 = math.MaxInt64

// CacheView is the read-only slice of cache state the selector needs:
// whether an object has a cached copy and how recent that copy is.
// *cache.Cache implements it; so do lightweight snapshots (the public
// facade builds one from a recency slice).
type CacheView interface {
	// Recency returns the cached copy's recency score in (0, 1], or 0 if
	// the object is not cached.
	Recency(catalog.ID) float64
	// Contains reports whether the object has a cached copy at all.
	Contains(catalog.ID) bool
}

// Demand aggregates the requests for one object within a batch.
type Demand struct {
	Object  catalog.ID
	Targets []float64 // one per requesting client
}

// Count returns the number of clients requesting the object.
func (d Demand) Count() int { return len(d.Targets) }

// Aggregate groups a request batch by object, preserving first-seen object
// order for determinism.
func Aggregate(reqs []client.Request) []Demand {
	index := make(map[catalog.ID]int)
	var out []Demand
	for _, r := range reqs {
		i, ok := index[r.Object]
		if !ok {
			i = len(out)
			index[r.Object] = i
			out = append(out, Demand{Object: r.Object})
		}
		out[i].Targets = append(out[i].Targets, r.Target)
	}
	return out
}

// SolverKind selects the knapsack algorithm used by the selector.
type SolverKind int

const (
	// SolverDP is the exact dynamic program (paper's choice).
	SolverDP SolverKind = iota
	// SolverGreedy is the density heuristic with best-single fallback.
	SolverGreedy
	// SolverFPTAS is the (1-eps)-approximation scheme.
	SolverFPTAS
)

// String implements fmt.Stringer.
func (k SolverKind) String() string {
	switch k {
	case SolverDP:
		return "dp"
	case SolverGreedy:
		return "greedy"
	case SolverFPTAS:
		return "fptas"
	default:
		return fmt.Sprintf("SolverKind(%d)", int(k))
	}
}

// Config configures a Selector.
type Config struct {
	// Score maps (cached recency, client target) to a client score.
	// Defaults to recency.Inverse, the paper's first scoring function.
	Score recency.ScoreFunc
	// Solver selects the knapsack algorithm; defaults to SolverDP.
	Solver SolverKind
	// Eps is the FPTAS approximation parameter (used only by
	// SolverFPTAS); defaults to 0.1.
	Eps float64
}

// Selector maps request batches to download plans.
type Selector struct {
	cat *catalog.Catalog
	cfg Config
}

// NewSelector creates a selector for the given catalog.
func NewSelector(cat *catalog.Catalog, cfg Config) (*Selector, error) {
	if cat == nil {
		return nil, fmt.Errorf("core: nil catalog")
	}
	if cfg.Score == nil {
		cfg.Score = recency.Inverse
	}
	if cfg.Eps == 0 {
		cfg.Eps = 0.1
	}
	if cfg.Eps < 0 || cfg.Eps >= 1 {
		return nil, fmt.Errorf("core: eps %v out of (0,1)", cfg.Eps)
	}
	switch cfg.Solver {
	case SolverDP, SolverGreedy, SolverFPTAS:
	default:
		return nil, fmt.Errorf("core: unknown solver %d", int(cfg.Solver))
	}
	return &Selector{cat: cat, cfg: cfg}, nil
}

// Plan is the selector's decision for one batch.
type Plan struct {
	// Download lists the objects to fetch remotely, ascending by ID.
	Download []catalog.ID
	// FromCache lists the requested objects served from the cache,
	// ascending by ID.
	FromCache []catalog.ID
	// DownloadUnits is the total size of the Download set.
	DownloadUnits int64
	// Requests is the number of client requests in the batch.
	Requests int
	// CachedScore is the total client score if nothing were downloaded.
	CachedScore float64
	// Gain is the total client score added by the planned downloads.
	Gain float64
}

// AverageScore returns the mean per-client recency score the plan
// achieves (paper Section 4's Average Score), or 0 for an empty batch.
func (p Plan) AverageScore() float64 {
	if p.Requests == 0 {
		return 0
	}
	return (p.CachedScore + p.Gain) / float64(p.Requests)
}

// Select chooses the objects to download for the aggregated demands given
// the cache state and a budget in data units (Unlimited for no limit).
func (s *Selector) Select(demands []Demand, c CacheView, budget int64) (Plan, error) {
	if budget < 0 {
		return Plan{}, fmt.Errorf("core: negative budget %d", budget)
	}
	items, meta, plan := s.buildItems(demands, c)
	if len(items) == 0 {
		sort.Slice(plan.FromCache, func(i, j int) bool { return plan.FromCache[i] < plan.FromCache[j] })
		return plan, nil
	}

	// An unlimited budget means every positive-profit item is taken; skip
	// the solver (and its O(n·budget) cost).
	if budget == Unlimited {
		for i, it := range items {
			plan.Download = append(plan.Download, meta[i].object)
			plan.DownloadUnits += it.Weight
			plan.Gain += it.Profit
		}
	} else {
		sol, err := s.solve(items, budget)
		if err != nil {
			return Plan{}, err
		}
		taken := make(map[int]bool, len(sol.Take))
		for _, i := range sol.Take {
			taken[i] = true
			plan.Download = append(plan.Download, meta[i].object)
		}
		plan.DownloadUnits = sol.Weight
		plan.Gain = sol.Profit
		for i := range items {
			if !taken[i] {
				plan.FromCache = append(plan.FromCache, meta[i].object)
			}
		}
	}
	sort.Slice(plan.Download, func(i, j int) bool { return plan.Download[i] < plan.Download[j] })
	sort.Slice(plan.FromCache, func(i, j int) bool { return plan.FromCache[i] < plan.FromCache[j] })
	return plan, nil
}

type itemMeta struct {
	object catalog.ID
}

// buildItems constructs the knapsack instance for a batch: one item per
// requested object whose download would add client score. Objects already
// fresh enough for all their requesters go straight to FromCache.
func (s *Selector) buildItems(demands []Demand, c CacheView) ([]knapsack.Item, []itemMeta, Plan) {
	var items []knapsack.Item
	var meta []itemMeta
	var plan Plan
	for _, d := range demands {
		if !s.cat.Valid(d.Object) {
			// Unknown object: nothing to serve; skip defensively.
			continue
		}
		x := c.Recency(d.Object) // 0 when absent
		profit := 0.0
		for _, target := range d.Targets {
			score := 0.0
			if c.Contains(d.Object) {
				score = s.cfg.Score(x, target)
			}
			plan.CachedScore += score
			profit += recency.Benefit(score)
		}
		plan.Requests += d.Count()
		if profit > 0 {
			items = append(items, knapsack.Item{Weight: s.cat.Size(d.Object), Profit: profit})
			meta = append(meta, itemMeta{object: d.Object})
		} else {
			plan.FromCache = append(plan.FromCache, d.Object)
		}
	}
	return items, meta, plan
}

func (s *Selector) solve(items []knapsack.Item, budget int64) (knapsack.Solution, error) {
	switch s.cfg.Solver {
	case SolverGreedy:
		return knapsack.SolveGreedy(items, budget)
	case SolverFPTAS:
		return knapsack.SolveFPTAS(items, budget, s.cfg.Eps)
	default:
		return knapsack.SolveDP(items, budget)
	}
}

// Trace computes the exact best-gain-per-budget curve for a batch — the
// object of study in the paper's Section 4. The returned trace's Value[b]
// is the score gain achievable with budget b; combine with the plan's
// CachedScore to obtain Average Score curves.
func (s *Selector) Trace(demands []Demand, c CacheView, maxBudget int64) (*knapsack.Trace, Plan, error) {
	if maxBudget < 0 {
		return nil, Plan{}, fmt.Errorf("core: negative budget %d", maxBudget)
	}
	items, _, plan := s.buildItems(demands, c)
	tr, err := knapsack.TraceDP(items, maxBudget)
	if err != nil {
		return nil, Plan{}, err
	}
	return tr, plan, nil
}
