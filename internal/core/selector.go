// Package core implements the paper's primary contribution: the on-demand
// download selector. Given the batch of client requests a base station has
// accumulated, the state of its cache, and an upper bound on how much data
// may be downloaded from the fixed network, the selector decides which
// objects to access remotely and which to serve from the (possibly stale)
// cache so as to maximize the mean client recency score.
//
// The mapping to 0/1 knapsack follows Section 2 of the paper exactly: each
// candidate object u is an item of weight size(u); its profit is the sum,
// over the clients requesting u, of the benefit of downloading —
// 1 − f_C(x), where x is the cached copy's recency score and C the
// client's target recency. Objects not in the cache at all must be
// downloaded to be served; they enter the knapsack with per-client benefit
// 1 (score 0 from the cache).
//
// The package also implements the paper's future-work extension: choosing
// the upper bound itself. UpperBound inspects the dynamic program's
// best-score-per-budget curve and picks the smallest budget at which the
// marginal gain per data unit falls below a threshold (or a fraction of
// the maximum attainable score is reached), formalizing the paper's
// observation that "under some circumstances there is not a great benefit
// to downloading large amounts of data".
package core

import (
	"fmt"
	"math"
	"slices"

	"mobicache/internal/catalog"
	"mobicache/internal/client"
	"mobicache/internal/knapsack"
	"mobicache/internal/obs"
	"mobicache/internal/recency"
)

// Unlimited is the budget value meaning "no limit on downloaded data".
const Unlimited int64 = math.MaxInt64

// CacheView is the read-only slice of cache state the selector needs:
// whether an object has a cached copy and how recent that copy is.
// *cache.Cache implements it; so do lightweight snapshots (the public
// facade builds one from a recency slice).
type CacheView interface {
	// Recency returns the cached copy's recency score in (0, 1], or 0 if
	// the object is not cached.
	Recency(catalog.ID) float64
	// Contains reports whether the object has a cached copy at all.
	Contains(catalog.ID) bool
}

// Demand aggregates the requests for one object within a batch.
type Demand struct {
	Object  catalog.ID
	Targets []float64 // one per requesting client
}

// Count returns the number of clients requesting the object.
func (d Demand) Count() int { return len(d.Targets) }

// Aggregate groups a request batch by object, preserving first-seen object
// order for determinism. The result is freshly allocated; on the per-tick
// hot path prefer Selector.AggregateRequests, which reuses the selector's
// workspace.
func Aggregate(reqs []client.Request) []Demand {
	index := make(map[catalog.ID]int)
	var out []Demand
	for _, r := range reqs {
		i, ok := index[r.Object]
		if !ok {
			i = len(out)
			index[r.Object] = i
			out = append(out, Demand{Object: r.Object})
		}
		out[i].Targets = append(out[i].Targets, r.Target)
	}
	return out
}

// SolverKind selects the knapsack algorithm used by the selector.
type SolverKind int

const (
	// SolverDP is the exact dynamic program (paper's choice).
	SolverDP SolverKind = iota
	// SolverGreedy is the density heuristic with best-single fallback.
	SolverGreedy
	// SolverFPTAS is the (1-eps)-approximation scheme.
	SolverFPTAS
	// SolverIncremental is the exact warm-start solver: the selector
	// keeps a slot-stable knapsack instance across ticks (departed
	// objects become zero-profit tombstones the strict-improvement DP
	// never takes, new objects append) and the solver re-derives only
	// the DP rows the tick's diff invalidated. Plans achieve exactly the
	// optimal profit, but equal-profit ties may resolve to a different
	// download set than SolverDP, whose instance is in demand order.
	SolverIncremental
	// SolverCertified is SolverIncremental with the approximate first
	// pass enabled: a density-greedy or capacity-quantized solution is
	// returned when certifiably within (1-CertEps) of optimal, and the
	// solver escalates to the exact path otherwise.
	SolverCertified
)

// String implements fmt.Stringer.
func (k SolverKind) String() string {
	switch k {
	case SolverDP:
		return "dp"
	case SolverGreedy:
		return "greedy"
	case SolverFPTAS:
		return "fptas"
	case SolverIncremental:
		return "incremental"
	case SolverCertified:
		return "certified"
	default:
		return fmt.Sprintf("SolverKind(%d)", int(k))
	}
}

// ParseSolver maps a solver name ("dp", "greedy", "fptas",
// "incremental", "certified") to its SolverKind; the empty string means
// the default, SolverDP.
func ParseSolver(name string) (SolverKind, error) {
	switch name {
	case "", "dp":
		return SolverDP, nil
	case "greedy":
		return SolverGreedy, nil
	case "fptas":
		return SolverFPTAS, nil
	case "incremental":
		return SolverIncremental, nil
	case "certified":
		return SolverCertified, nil
	default:
		return 0, fmt.Errorf("core: unknown solver %q (want dp, greedy, fptas, incremental, or certified)", name)
	}
}

// Config configures a Selector.
type Config struct {
	// Score maps (cached recency, client target) to a client score.
	// Defaults to recency.Inverse, the paper's first scoring function.
	Score recency.ScoreFunc
	// Solver selects the knapsack algorithm; defaults to SolverDP.
	Solver SolverKind
	// Eps is the FPTAS approximation parameter (used only by
	// SolverFPTAS); defaults to 0.1.
	Eps float64
	// CertEps is the certified-pass tolerance (used only by
	// SolverCertified): approximate solutions are accepted only when
	// provably within a factor (1-CertEps) of optimal. Defaults to 0.05.
	CertEps float64
	// FullResolves / WarmResolves, when non-nil, count each bounded-
	// budget solve as either a cold re-solve or one served from warm
	// incremental state (see obs.StationMetrics.SolverFullResolves).
	// Non-incremental solvers count every solve as full.
	FullResolves *obs.Counter
	WarmResolves *obs.Counter
	// Trace, when non-nil, receives one obs.Decision per knapsack
	// candidate on every Select call — why the object was downloaded or
	// left to its stale copy (profit, weight, cached recency, budget
	// remaining). Clones share the ring; recording is bounded and
	// allocation-free.
	Trace *obs.TraceRing
}

// Selector maps request batches to download plans.
//
// A Selector owns a reusable solver workspace and scratch buffers, so at
// steady state Select allocates nothing; in exchange it is not safe for
// concurrent use, and the slices inside a returned Plan (Download,
// FromCache) alias that workspace: they are valid until the selector's
// next call. Use Clone to give each goroutine its own selector over the
// same catalog and configuration.
type Selector struct {
	cat *catalog.Catalog
	cfg Config

	// tick stamps decision-trace records (see SetTick).
	tick int

	// Per-call workspace, reused across ticks.
	solver    knapsack.Solver
	demands   []Demand
	demandOf  []int32 // object -> index into demands, -1 when absent
	items     []knapsack.Item
	meta      []itemMeta
	download  []catalog.ID
	fromCache []catalog.ID
	taken     []bool

	// Incremental-solver state (SolverIncremental / SolverCertified):
	// a slot-stable knapsack instance that persists across ticks so the
	// solver can diff it. slotOf maps object -> slot (-1 when absent);
	// slots hold zero-profit tombstones between demands and are
	// compacted — at the price of one cold solve — when tombstones
	// outnumber live entries.
	inc       *knapsack.IncrementalSolver
	slotOf    []int32
	slotObj   []catalog.ID
	slotItems []knapsack.Item
	slotRec   []float64 // cached recency per slot at decision time
	slotDem   []bool    // demanded this tick (cleared each Select)
}

// NewSelector creates a selector for the given catalog.
func NewSelector(cat *catalog.Catalog, cfg Config) (*Selector, error) {
	if cat == nil {
		return nil, fmt.Errorf("core: nil catalog")
	}
	if cfg.Score == nil {
		cfg.Score = recency.Inverse
	}
	if cfg.Eps == 0 {
		cfg.Eps = 0.1
	}
	if cfg.Eps < 0 || cfg.Eps >= 1 {
		return nil, fmt.Errorf("core: eps %v out of (0,1)", cfg.Eps)
	}
	if cfg.CertEps == 0 {
		cfg.CertEps = 0.05
	}
	if cfg.CertEps < 0 || cfg.CertEps >= 1 {
		return nil, fmt.Errorf("core: certification eps %v out of (0,1)", cfg.CertEps)
	}
	switch cfg.Solver {
	case SolverDP, SolverGreedy, SolverFPTAS, SolverIncremental, SolverCertified:
	default:
		return nil, fmt.Errorf("core: unknown solver %d", int(cfg.Solver))
	}
	return &Selector{cat: cat, cfg: cfg}, nil
}

// Clone returns a selector sharing this selector's catalog and
// configuration (including any decision-trace ring) but owning a fresh
// workspace, so each goroutine of a concurrent server can select
// independently.
func (s *Selector) Clone() *Selector {
	return &Selector{cat: s.cat, cfg: s.cfg}
}

// SetTraceRing installs (or, with nil, removes) the decision-trace sink
// for subsequent Select calls. Clones made after the call inherit it.
func (s *Selector) SetTraceRing(r *obs.TraceRing) { s.cfg.Trace = r }

// Solver reports which knapsack algorithm this selector runs. Clones
// share their parent's configuration, so a pooled clone answers for the
// selector it was cloned from.
func (s *Selector) Solver() SolverKind { return s.cfg.Solver }

// SetTick sets the tick stamped on subsequent decision-trace records.
// Tick-driven callers (the knapsack policy) set the simulated tick; the
// daemon stamps a selection sequence number instead.
func (s *Selector) SetTick(tick int) { s.tick = tick }

// Plan is the selector's decision for one batch.
type Plan struct {
	// Download lists the objects to fetch remotely, ascending by ID.
	Download []catalog.ID
	// FromCache lists the requested objects served from the cache,
	// ascending by ID.
	FromCache []catalog.ID
	// DownloadUnits is the total size of the Download set.
	DownloadUnits int64
	// Requests is the number of client requests in the batch.
	Requests int
	// CachedScore is the total client score if nothing were downloaded.
	CachedScore float64
	// Gain is the total client score added by the planned downloads.
	Gain float64
}

// AverageScore returns the mean per-client recency score the plan
// achieves (paper Section 4's Average Score), or 0 for an empty batch.
func (p Plan) AverageScore() float64 {
	if p.Requests == 0 {
		return 0
	}
	return (p.CachedScore + p.Gain) / float64(p.Requests)
}

// AggregateRequests groups a request batch by object, preserving
// first-seen object order, into the selector's reusable workspace.
// Requests for objects outside the catalog are dropped (Select would skip
// them anyway). The returned demands are valid until the next
// AggregateRequests or SelectRequests call on this selector.
func (s *Selector) AggregateRequests(reqs []client.Request) []Demand {
	if s.demandOf == nil {
		s.demandOf = make([]int32, s.cat.Len())
		for i := range s.demandOf {
			s.demandOf[i] = -1
		}
	}
	ds := s.demands[:0]
	for _, r := range reqs {
		if !s.cat.Valid(r.Object) {
			continue
		}
		idx := s.demandOf[r.Object]
		if idx < 0 {
			idx = int32(len(ds))
			s.demandOf[r.Object] = idx
			if len(ds) < cap(ds) {
				// Reclaim the slot along with its Targets capacity.
				ds = ds[:len(ds)+1]
				d := &ds[idx]
				d.Object = r.Object
				d.Targets = d.Targets[:0]
			} else {
				ds = append(ds, Demand{Object: r.Object})
			}
		}
		ds[idx].Targets = append(ds[idx].Targets, r.Target)
	}
	for i := range ds {
		s.demandOf[ds[i].Object] = -1
	}
	s.demands = ds
	return ds
}

// SelectRequests aggregates a raw request batch and selects the objects
// to download, reusing the selector's workspace throughout — the
// allocation-free form of Aggregate + Select for the per-tick hot path.
func (s *Selector) SelectRequests(reqs []client.Request, c CacheView, budget int64) (Plan, error) {
	return s.Select(s.AggregateRequests(reqs), c, budget)
}

// Select chooses the objects to download for the aggregated demands given
// the cache state and a budget in data units (Unlimited for no limit).
// The returned plan's slices alias the selector's workspace and are valid
// until the next call on this selector.
func (s *Selector) Select(demands []Demand, c CacheView, budget int64) (Plan, error) {
	if budget < 0 {
		return Plan{}, fmt.Errorf("core: negative budget %d", budget)
	}
	if s.cfg.Solver == SolverIncremental || s.cfg.Solver == SolverCertified {
		return s.selectIncremental(demands, c, budget)
	}
	items, meta, plan := s.buildItems(demands, c)
	plan.Download = s.download[:0]
	if len(items) == 0 {
		slices.Sort(plan.FromCache)
		s.storeScratch(items, meta, plan)
		return plan, nil
	}

	// An unlimited budget means every positive-profit item is taken; skip
	// the solver (and its O(n·budget) cost).
	unlimited := budget == Unlimited
	if unlimited {
		for i, it := range items {
			plan.Download = append(plan.Download, meta[i].object)
			plan.DownloadUnits += it.Weight
			plan.Gain += it.Profit
		}
	} else {
		sol, err := s.solve(items, budget)
		if err != nil {
			return Plan{}, err
		}
		if len(s.taken) < len(items) {
			s.taken = make([]bool, len(items))
		}
		taken := s.taken[:len(items)]
		clear(taken)
		for _, i := range sol.Take {
			taken[i] = true
			plan.Download = append(plan.Download, meta[i].object)
		}
		plan.DownloadUnits = sol.Weight
		plan.Gain = sol.Profit
		for i := range items {
			if !taken[i] {
				plan.FromCache = append(plan.FromCache, meta[i].object)
			}
		}
	}
	if s.cfg.Trace != nil {
		s.recordDecisions(items, meta, budget, unlimited)
	}
	slices.Sort(plan.Download)
	slices.Sort(plan.FromCache)
	s.storeScratch(items, meta, plan)
	return plan, nil
}

// recordDecisions writes one trace entry per knapsack candidate of the
// Select call that just ran: taken items first (with the running budget
// remaining as each download is committed), then the candidates whose
// requests stay on their stale cached copies. It reuses the workspace's
// taken flags and allocates nothing.
func (s *Selector) recordDecisions(items []knapsack.Item, meta []itemMeta, budget int64, unlimited bool) {
	ring := s.cfg.Trace
	remaining := obs.UnlimitedBudget
	if !unlimited {
		remaining = budget
	}
	for i, it := range items {
		if !unlimited && !s.taken[i] {
			continue
		}
		if !unlimited {
			remaining -= it.Weight
		}
		ring.Record(obs.Decision{
			Tick:            s.tick,
			Object:          int(meta[i].object),
			Action:          obs.ActionDownload,
			Profit:          it.Profit,
			Weight:          it.Weight,
			Recency:         meta[i].recency,
			BudgetRemaining: remaining,
		})
	}
	if unlimited {
		return // every candidate was downloaded
	}
	for i, it := range items {
		if s.taken[i] {
			continue
		}
		ring.Record(obs.Decision{
			Tick:            s.tick,
			Object:          int(meta[i].object),
			Action:          obs.ActionStale,
			Profit:          it.Profit,
			Weight:          it.Weight,
			Recency:         meta[i].recency,
			BudgetRemaining: remaining,
		})
	}
}

// storeScratch hands the (possibly regrown) working slices back to the
// selector so their capacity carries over to the next call.
func (s *Selector) storeScratch(items []knapsack.Item, meta []itemMeta, plan Plan) {
	s.items = items
	s.meta = meta
	if plan.Download != nil {
		s.download = plan.Download
	}
	s.fromCache = plan.FromCache
}

type itemMeta struct {
	object  catalog.ID
	recency float64 // cached recency at decision time (0 = absent)
}

// buildItems constructs the knapsack instance for a batch: one item per
// requested object whose download would add client score. Objects already
// fresh enough for all their requesters go straight to FromCache.
func (s *Selector) buildItems(demands []Demand, c CacheView) ([]knapsack.Item, []itemMeta, Plan) {
	items := s.items[:0]
	meta := s.meta[:0]
	var plan Plan
	plan.FromCache = s.fromCache[:0]
	for _, d := range demands {
		if !s.cat.Valid(d.Object) {
			// Unknown object: nothing to serve; skip defensively.
			continue
		}
		x := c.Recency(d.Object) // 0 when absent
		profit := 0.0
		for _, target := range d.Targets {
			score := 0.0
			if c.Contains(d.Object) {
				score = s.cfg.Score(x, target)
			}
			plan.CachedScore += score
			profit += recency.Benefit(score)
		}
		plan.Requests += d.Count()
		if profit > 0 {
			items = append(items, knapsack.Item{Weight: s.cat.Size(d.Object), Profit: profit})
			meta = append(meta, itemMeta{object: d.Object, recency: x})
		} else {
			plan.FromCache = append(plan.FromCache, d.Object)
		}
	}
	return items, meta, plan
}

func (s *Selector) solve(items []knapsack.Item, budget int64) (knapsack.Solution, error) {
	if s.cfg.FullResolves != nil {
		s.cfg.FullResolves.Inc() // one-shot solvers always solve cold
	}
	switch s.cfg.Solver {
	case SolverGreedy:
		return s.solver.SolveGreedy(items, budget)
	case SolverFPTAS:
		return s.solver.SolveFPTAS(items, budget, s.cfg.Eps)
	default:
		return s.solver.SolveDP(items, budget)
	}
}

// selectIncremental is Select for the warm-start solver kinds. It folds
// the batch into the selector's slot-stable instance — live demands
// update their slot in place, new ones append, everything else decays to
// a zero-profit tombstone the strict-improvement DP provably never takes
// — and hands the whole instance to the incremental solver, whose diff
// against the previous tick determines how much DP work actually runs.
func (s *Selector) selectIncremental(demands []Demand, c CacheView, budget int64) (Plan, error) {
	var plan Plan
	plan.FromCache = s.fromCache[:0]
	plan.Download = s.download[:0]
	if s.slotOf == nil {
		s.slotOf = make([]int32, s.cat.Len())
		for i := range s.slotOf {
			s.slotOf[i] = -1
		}
	}
	// Fold demands into slots, scoring exactly as buildItems does.
	for _, d := range demands {
		if !s.cat.Valid(d.Object) {
			continue
		}
		x := c.Recency(d.Object) // 0 when absent
		profit := 0.0
		for _, target := range d.Targets {
			score := 0.0
			if c.Contains(d.Object) {
				score = s.cfg.Score(x, target)
			}
			plan.CachedScore += score
			profit += recency.Benefit(score)
		}
		plan.Requests += d.Count()
		if profit <= 0 {
			// Fresh enough already; any slot it holds decays below.
			plan.FromCache = append(plan.FromCache, d.Object)
			continue
		}
		slot := s.slotOf[d.Object]
		if slot < 0 {
			slot = int32(len(s.slotItems))
			s.slotOf[d.Object] = slot
			s.slotItems = append(s.slotItems, knapsack.Item{})
			s.slotObj = append(s.slotObj, d.Object)
			s.slotRec = append(s.slotRec, 0)
			s.slotDem = append(s.slotDem, false)
		}
		s.slotItems[slot] = knapsack.Item{Weight: s.cat.Size(d.Object), Profit: profit}
		s.slotRec[slot] = x
		s.slotDem[slot] = true
	}
	// Tombstone slots the batch no longer demands, then compact once
	// tombstones dominate — compaction shifts positions, costing one
	// cold solve, but keeps the table proportional to the live set.
	live := 0
	for i := range s.slotItems {
		if s.slotDem[i] {
			s.slotDem[i] = false
			live++
		} else {
			s.slotItems[i].Profit = 0
		}
	}
	if len(s.slotItems) > 16 && len(s.slotItems) > 2*live {
		s.compactSlots()
	}
	if live == 0 {
		slices.Sort(plan.FromCache)
		s.fromCache = plan.FromCache
		return plan, nil
	}

	unlimited := budget == Unlimited
	if unlimited {
		for i, it := range s.slotItems {
			if it.Profit > 0 {
				plan.Download = append(plan.Download, s.slotObj[i])
				plan.DownloadUnits += it.Weight
				plan.Gain += it.Profit
			}
		}
	} else {
		if s.inc == nil {
			s.inc = knapsack.NewIncrementalSolver()
			if s.cfg.Solver == SolverCertified {
				s.inc.CertEps = s.cfg.CertEps
			}
		}
		before := s.inc.Stats()
		sol, err := s.inc.Solve(s.slotItems, budget)
		if err != nil {
			return Plan{}, err
		}
		s.countResolves(before)
		if len(s.taken) < len(s.slotItems) {
			s.taken = make([]bool, len(s.slotItems))
		}
		taken := s.taken[:len(s.slotItems)]
		clear(taken)
		for _, i := range sol.Take {
			taken[i] = true
			plan.Download = append(plan.Download, s.slotObj[i])
		}
		plan.DownloadUnits = sol.Weight
		plan.Gain = sol.Profit
		for i, it := range s.slotItems {
			if it.Profit > 0 && !taken[i] {
				plan.FromCache = append(plan.FromCache, s.slotObj[i])
			}
		}
	}
	if s.cfg.Trace != nil {
		s.recordSlotDecisions(budget, unlimited)
	}
	slices.Sort(plan.Download)
	slices.Sort(plan.FromCache)
	s.download = plan.Download
	s.fromCache = plan.FromCache
	return plan, nil
}

// compactSlots drops tombstoned slots, renumbering the survivors.
func (s *Selector) compactSlots() {
	k := 0
	for i := range s.slotItems {
		if s.slotItems[i].Profit > 0 {
			s.slotItems[k] = s.slotItems[i]
			s.slotObj[k] = s.slotObj[i]
			s.slotRec[k] = s.slotRec[i]
			s.slotOf[s.slotObj[i]] = int32(k)
			k++
		} else {
			s.slotOf[s.slotObj[i]] = -1
		}
	}
	s.slotItems = s.slotItems[:k]
	s.slotObj = s.slotObj[:k]
	s.slotRec = s.slotRec[:k]
	s.slotDem = s.slotDem[:k]
}

// countResolves folds the incremental solver's path counters since
// `before` into the configured resolve counters: full solves on one
// side; cached, warm, unit, and certified solves — everything that
// avoided a cold DP — on the other.
func (s *Selector) countResolves(before knapsack.SolverStats) {
	if s.cfg.FullResolves == nil && s.cfg.WarmResolves == nil {
		return
	}
	after := s.inc.Stats()
	full := after.FullSolves - before.FullSolves
	warm := (after.WarmSolves - before.WarmSolves) +
		(after.CachedHits - before.CachedHits) +
		(after.UnitSolves - before.UnitSolves) +
		(after.CertifiedSolves - before.CertifiedSolves)
	if full > 0 && s.cfg.FullResolves != nil {
		s.cfg.FullResolves.Add(full)
	}
	if warm > 0 && s.cfg.WarmResolves != nil {
		s.cfg.WarmResolves.Add(warm)
	}
}

// recordSlotDecisions is recordDecisions for the slot-stable instance:
// one entry per live candidate slot, downloads first.
func (s *Selector) recordSlotDecisions(budget int64, unlimited bool) {
	ring := s.cfg.Trace
	remaining := obs.UnlimitedBudget
	if !unlimited {
		remaining = budget
	}
	for i, it := range s.slotItems {
		if it.Profit <= 0 || (!unlimited && !s.taken[i]) {
			continue
		}
		if !unlimited {
			remaining -= it.Weight
		}
		ring.Record(obs.Decision{
			Tick:            s.tick,
			Object:          int(s.slotObj[i]),
			Action:          obs.ActionDownload,
			Profit:          it.Profit,
			Weight:          it.Weight,
			Recency:         s.slotRec[i],
			BudgetRemaining: remaining,
		})
	}
	if unlimited {
		return // every candidate was downloaded
	}
	for i, it := range s.slotItems {
		if it.Profit <= 0 || s.taken[i] {
			continue
		}
		ring.Record(obs.Decision{
			Tick:            s.tick,
			Object:          int(s.slotObj[i]),
			Action:          obs.ActionStale,
			Profit:          it.Profit,
			Weight:          it.Weight,
			Recency:         s.slotRec[i],
			BudgetRemaining: remaining,
		})
	}
}

// Trace computes the exact best-gain-per-budget curve for a batch — the
// object of study in the paper's Section 4. The returned trace's Value[b]
// is the score gain achievable with budget b; combine with the plan's
// CachedScore to obtain Average Score curves. The trace aliases the
// selector's workspace: it stays valid across Select calls but is
// overwritten by the next Trace (or UpperBound) call.
func (s *Selector) Trace(demands []Demand, c CacheView, maxBudget int64) (*knapsack.Trace, Plan, error) {
	if maxBudget < 0 {
		return nil, Plan{}, fmt.Errorf("core: negative budget %d", maxBudget)
	}
	items, meta, plan := s.buildItems(demands, c)
	tr, err := s.solver.TraceDP(items, maxBudget)
	if err != nil {
		return nil, Plan{}, err
	}
	s.storeScratch(items, meta, plan)
	return tr, plan, nil
}
