package core

import (
	"slices"
	"testing"

	"mobicache/internal/catalog"
	"mobicache/internal/client"
	"mobicache/internal/obs"
	"mobicache/internal/rng"
)

// absDiff avoids importing math for a one-liner.
func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// TestIncrementalSelectorMatchesDP drives a DP selector and an
// incremental selector through the same churning tick workload — aging
// cache entries, shifting demand sets, per-tick budget changes, the
// occasional unlimited tick — and requires identical plans throughout.
// The random continuous profits make equal-profit ties (the one case
// where the two instance orders may legitimately differ) vanishingly
// unlikely, so the download sets themselves must match, not just the
// gains. The certified selector runs alongside under its weaker
// (1-CertEps) guarantee.
func TestIncrementalSelectorMatchesDP(t *testing.T) {
	const (
		objects = 50
		ticks   = 80
		eps     = 0.05
		tol     = 1e-9
	)
	r := rng.New(0x51E7)
	sizes := make([]int64, objects)
	for i := range sizes {
		sizes[i] = int64(r.IntRange(1, 8))
	}
	cat := testCatalog(sizes...)
	c := freshCache(cat, nil)

	dp, err := NewSelector(cat, Config{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	var full, warm obs.Counter
	inc, err := NewSelector(cat, Config{Solver: SolverIncremental, FullResolves: &full, WarmResolves: &warm})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := NewSelector(cat, Config{Solver: SolverCertified, CertEps: eps})
	if err != nil {
		t.Fatal(err)
	}

	bounded := 0
	for tick := 0; tick < ticks; tick++ {
		for k := 0; k < 5; k++ {
			c.OnMasterUpdate(catalog.ID(r.IntRange(0, objects-1)))
		}
		var reqs []client.Request
		for k, n := 0, r.IntRange(5, 25); k < n; k++ {
			reqs = append(reqs, client.Request{
				Client: k,
				Object: catalog.ID(r.IntRange(0, objects-1)),
				Target: float64(r.IntRange(50, 100)) / 100,
			})
		}
		budget := int64(r.IntRange(10, 80))
		if tick%10 == 9 {
			budget = Unlimited
		}
		want, err := dp.Select(Aggregate(reqs), c, budget)
		if err != nil {
			t.Fatal(err)
		}
		got, err := inc.Select(Aggregate(reqs), c, budget)
		if err != nil {
			t.Fatal(err)
		}
		if got.Requests != want.Requests || got.CachedScore != want.CachedScore {
			t.Fatalf("tick %d: batch accounting differs: got %+v want %+v", tick, got, want)
		}
		if absDiff(got.Gain, want.Gain) > tol {
			t.Fatalf("tick %d: gain %v != dp gain %v", tick, got.Gain, want.Gain)
		}
		if !slices.Equal(got.Download, want.Download) {
			t.Fatalf("tick %d: download %v != dp %v", tick, got.Download, want.Download)
		}
		if !slices.Equal(got.FromCache, want.FromCache) {
			t.Fatalf("tick %d: fromCache %v != dp %v", tick, got.FromCache, want.FromCache)
		}
		if got.DownloadUnits != want.DownloadUnits {
			t.Fatalf("tick %d: units %d != dp %d", tick, got.DownloadUnits, want.DownloadUnits)
		}
		if budget != Unlimited && len(want.Download) > 0 {
			bounded++
		}

		cp, err := cert.Select(Aggregate(reqs), c, budget)
		if err != nil {
			t.Fatal(err)
		}
		if cp.Requests != want.Requests || cp.CachedScore != want.CachedScore {
			t.Fatalf("tick %d: certified accounting differs: got %+v want %+v", tick, cp, want)
		}
		if cp.Gain > want.Gain+tol {
			t.Fatalf("tick %d: certified gain %v beats optimum %v", tick, cp.Gain, want.Gain)
		}
		if cp.Gain < (1-eps)*want.Gain-tol {
			t.Fatalf("tick %d: certified gain %v below (1-%v) of optimum %v", tick, cp.Gain, eps, want.Gain)
		}
		if budget != Unlimited && cp.DownloadUnits > budget {
			t.Fatalf("tick %d: certified units %d exceed budget %d", tick, cp.DownloadUnits, budget)
		}
	}
	if bounded == 0 {
		t.Fatal("workload never exercised a bounded solve")
	}
	if full.Value() == 0 {
		t.Fatal("no full resolve recorded for the first bounded tick")
	}

	// A quiet stretch — no aging, the same batch and budget every tick, as
	// when no master update lands between selections — must be served from
	// warm solver state (the identical-instance cache), not re-solved.
	var reqs []client.Request
	for k := 0; k < 15; k++ {
		reqs = append(reqs, client.Request{
			Client: k,
			Object: catalog.ID(r.IntRange(0, objects-1)),
			Target: float64(r.IntRange(50, 100)) / 100,
		})
	}
	warmBefore := warm.Value()
	for i := 0; i < 5; i++ {
		want, err := dp.Select(Aggregate(reqs), c, 30)
		if err != nil {
			t.Fatal(err)
		}
		got, err := inc.Select(Aggregate(reqs), c, 30)
		if err != nil {
			t.Fatal(err)
		}
		if absDiff(got.Gain, want.Gain) > tol || !slices.Equal(got.Download, want.Download) {
			t.Fatalf("quiet tick %d: got %v (gain %v) want %v (gain %v)",
				i, got.Download, got.Gain, want.Download, want.Gain)
		}
	}
	if gotWarm := warm.Value() - warmBefore; gotWarm < 4 {
		t.Fatalf("quiet stretch warm resolves = %d, want >= 4 (full=%d)", gotWarm, full.Value())
	}
}

// TestIncrementalSelectorCompaction shrinks a wide demand set down to a
// few objects so tombstones dominate and the slot table compacts, then
// widens it again; plans must stay identical to DP across both shifts.
func TestIncrementalSelectorCompaction(t *testing.T) {
	const objects = 40
	r := rng.New(0xC03A)
	sizes := make([]int64, objects)
	for i := range sizes {
		sizes[i] = int64(r.IntRange(1, 5))
	}
	cat := testCatalog(sizes...)
	lags := map[catalog.ID]int{}
	for i := 0; i < objects; i++ {
		lags[catalog.ID(i)] = 1 + i%4 // everything somewhat stale
	}
	c := freshCache(cat, lags)

	dp, _ := NewSelector(cat, Config{Solver: SolverDP})
	inc, _ := NewSelector(cat, Config{Solver: SolverIncremental})

	phases := [][2]int{{0, objects - 1}, {0, 4}, {0, 4}, {0, 4}, {0, objects - 1}}
	for p, span := range phases {
		for step := 0; step < 6; step++ {
			var reqs []client.Request
			for k := 0; k < 12; k++ {
				reqs = append(reqs, client.Request{
					Client: k,
					Object: catalog.ID(r.IntRange(span[0], span[1])),
					Target: float64(r.IntRange(60, 100)) / 100,
				})
			}
			want, err := dp.Select(Aggregate(reqs), c, 9)
			if err != nil {
				t.Fatal(err)
			}
			got, err := inc.Select(Aggregate(reqs), c, 9)
			if err != nil {
				t.Fatal(err)
			}
			if absDiff(got.Gain, want.Gain) > 1e-9 || !slices.Equal(got.Download, want.Download) {
				t.Fatalf("phase %d step %d: got %v (gain %v) want %v (gain %v)",
					p, step, got.Download, got.Gain, want.Download, want.Gain)
			}
		}
		if narrow := span[1]-span[0] < 10; narrow && len(inc.slotItems) > 16 {
			t.Fatalf("phase %d: slot table never compacted: %d slots for <=%d live objects",
				p, len(inc.slotItems), span[1]-span[0]+1)
		}
	}
}
