package core

import (
	"math/rand"
	"testing"

	"mobicache/internal/catalog"
	"mobicache/internal/client"
)

// clonePlan deep-copies a plan so it survives the selector's next call
// (plan slices alias the workspace).
func clonePlan(p Plan) Plan {
	p.Download = append([]catalog.ID(nil), p.Download...)
	p.FromCache = append([]catalog.ID(nil), p.FromCache...)
	return p
}

func samePlan(a, b Plan) bool {
	if a.DownloadUnits != b.DownloadUnits || a.Requests != b.Requests ||
		a.CachedScore != b.CachedScore || a.Gain != b.Gain ||
		len(a.Download) != len(b.Download) || len(a.FromCache) != len(b.FromCache) {
		return false
	}
	for i := range a.Download {
		if a.Download[i] != b.Download[i] {
			return false
		}
	}
	for i := range a.FromCache {
		if a.FromCache[i] != b.FromCache[i] {
			return false
		}
	}
	return true
}

// randRequests draws a batch over [0, objects) with a sprinkling of
// out-of-catalog IDs, which both aggregation paths must drop or skip.
func randRequests(r *rand.Rand, n, objects int) []client.Request {
	reqs := make([]client.Request, n)
	for i := range reqs {
		obj := catalog.ID(r.Intn(objects))
		if r.Intn(10) == 0 {
			obj = catalog.ID(objects + r.Intn(3)) // invalid on purpose
		}
		reqs[i] = client.Request{Client: i, Object: obj, Target: 0.1 + 0.9*r.Float64()}
	}
	return reqs
}

// TestSelectRequestsMatchesAggregateSelect checks that the workspace-reusing
// hot path (AggregateRequests + Select on one selector, repeatedly) gives
// exactly the plans of the allocating Aggregate + a fresh selector.
func TestSelectRequestsMatchesAggregateSelect(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	sizes := make([]int64, 40)
	for i := range sizes {
		sizes[i] = int64(r.Intn(9) + 1)
	}
	cat := testCatalog(sizes...)
	c := freshCache(cat, map[catalog.ID]int{2: 3, 7: 1, 11: 5, 30: 2})

	reused, err := NewSelector(cat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		reqs := randRequests(r, r.Intn(200)+1, cat.Len())
		budget := int64(r.Intn(60))
		if round%7 == 0 {
			budget = Unlimited
		}

		got, err := reused.SelectRequests(reqs, c, budget)
		if err != nil {
			t.Fatal(err)
		}
		got = clonePlan(got)

		fresh, err := NewSelector(cat, Config{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Select(Aggregate(reqs), c, budget)
		if err != nil {
			t.Fatal(err)
		}
		if !samePlan(got, clonePlan(want)) {
			t.Fatalf("round %d (budget %d): reused %+v != fresh %+v", round, budget, got, want)
		}
	}
}

// TestAggregateRequestsMatchesAggregate compares the workspace aggregation
// against the package function demand by demand (modulo the dropped
// invalid objects, which Select skips anyway).
func TestAggregateRequestsMatchesAggregate(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cat := testCatalog(1, 2, 3, 4, 5, 6, 7, 8)
	s, err := NewSelector(cat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		reqs := randRequests(r, r.Intn(100), cat.Len())
		got := s.AggregateRequests(reqs)

		var want []Demand
		for _, d := range Aggregate(reqs) {
			if cat.Valid(d.Object) {
				want = append(want, d)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d demands, want %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i].Object != want[i].Object || got[i].Count() != want[i].Count() {
				t.Fatalf("round %d demand %d: %+v != %+v", round, i, got[i], want[i])
			}
			for j := range got[i].Targets {
				if got[i].Targets[j] != want[i].Targets[j] {
					t.Fatalf("round %d demand %d target %d: %v != %v",
						round, i, j, got[i].Targets[j], want[i].Targets[j])
				}
			}
		}
	}
}

// TestSelectorSteadyStateAllocs locks in the tentpole guarantee for the
// full per-tick path: once the selector's workspace is warm, Select (and
// the request-level SelectRequests) allocate nothing.
func TestSelectorSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	sizes := make([]int64, 100)
	for i := range sizes {
		sizes[i] = int64(r.Intn(9) + 1)
	}
	cat := testCatalog(sizes...)
	lags := map[catalog.ID]int{}
	for i := 0; i < 40; i++ {
		lags[catalog.ID(r.Intn(cat.Len()))] = r.Intn(6) + 1
	}
	c := freshCache(cat, lags)
	reqs := randRequests(r, 500, cat.Len())

	s, err := NewSelector(cat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SelectRequests(reqs, c, 120); err != nil { // warm the workspace
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.SelectRequests(reqs, c, 120); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("steady-state SelectRequests: %v allocs/op, want 0", allocs)
	}

	demands := s.AggregateRequests(reqs)
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Select(demands, c, 120); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("steady-state Select: %v allocs/op, want 0", allocs)
	}
}

// TestCloneIsIndependent verifies a clone shares configuration but not
// workspace: plans from a clone match a fresh selector's, and using the
// clone does not disturb a plan held from the original.
func TestCloneIsIndependent(t *testing.T) {
	cat := testCatalog(3, 1, 4, 1, 5, 9)
	c := freshCache(cat, map[catalog.ID]int{0: 2, 2: 4, 4: 1})
	s, err := NewSelector(cat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []client.Request{
		{Client: 0, Object: 0, Target: 1},
		{Client: 1, Object: 2, Target: 0.9},
		{Client: 2, Object: 4, Target: 0.5},
		{Client: 3, Object: 2, Target: 1},
	}
	orig, err := s.SelectRequests(reqs, c, 8)
	if err != nil {
		t.Fatal(err)
	}
	origCopy := clonePlan(orig)

	cl := s.Clone()
	clPlan, err := cl.SelectRequests(reqs[:2], c, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = clPlan

	// The original's plan (aliasing s's workspace) must be untouched by
	// the clone's work.
	if !samePlan(orig, origCopy) {
		t.Fatalf("clone's Select disturbed the original's plan: %+v != %+v", orig, origCopy)
	}

	again, err := cl.SelectRequests(reqs, c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !samePlan(clonePlan(again), origCopy) {
		t.Fatalf("clone disagrees with original: %+v != %+v", again, origCopy)
	}
}
