package knapsack

import (
	"math"
	"math/rand"
	"testing"
)

// randItems draws n items; tieHeavy restricts weights and profits to tiny
// value sets so density and profit ties are common.
func randItems(r *rand.Rand, n int, tieHeavy bool) []Item {
	items := make([]Item, n)
	for i := range items {
		if tieHeavy {
			items[i] = Item{Weight: int64(r.Intn(3) + 1), Profit: float64(r.Intn(4))}
		} else {
			items[i] = Item{Weight: int64(r.Intn(20) + 1), Profit: r.Float64() * 10}
		}
	}
	return items
}

func sameSolution(a, b Solution) bool {
	if a.Profit != b.Profit || a.Weight != b.Weight || len(a.Take) != len(b.Take) {
		return false
	}
	for i := range a.Take {
		if a.Take[i] != b.Take[i] {
			return false
		}
	}
	return true
}

// TestSolverReuseMatchesPackage runs a mixed sequence of calls on one
// reused Solver workspace and checks each result against the package-level
// function (which uses a fresh workspace): buffer reuse across instances
// of varying shapes and sizes must never change an answer.
func TestSolverReuseMatchesPackage(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var s Solver
	for round := 0; round < 30; round++ {
		items := randItems(r, r.Intn(60)+1, round%3 == 0)
		capacity := int64(r.Intn(100))

		got, err := s.SolveDP(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SolveDP(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSolution(got, want) {
			t.Fatalf("round %d: SolveDP workspace %+v != fresh %+v", round, got, want)
		}

		gotTr, err := s.TraceDP(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		wantTr, err := TraceDP(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if gotTr.Capacity() != wantTr.Capacity() || len(gotTr.Value) != len(wantTr.Value) {
			t.Fatalf("round %d: trace shape mismatch", round)
		}
		for b := range gotTr.Value {
			if gotTr.Value[b] != wantTr.Value[b] {
				t.Fatalf("round %d: trace[%d] = %v, want %v", round, b, gotTr.Value[b], wantTr.Value[b])
			}
		}

		gotG, err := s.SolveGreedy(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		wantG, err := SolveGreedy(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSolution(gotG, wantG) {
			t.Fatalf("round %d: SolveGreedy workspace %+v != fresh %+v", round, gotG, wantG)
		}

		gotF, err := s.SolveFPTAS(items, capacity, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		wantF, err := SolveFPTAS(items, capacity, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSolution(gotF, wantF) {
			t.Fatalf("round %d: SolveFPTAS workspace %+v != fresh %+v", round, gotF, wantF)
		}
	}
}

// TestSolveDPCapacityNearUnlimited is the regression test for the
// unchecked int(capacity) casts: a budget of math.MaxInt64 (core.Unlimited)
// must clamp to the total item weight instead of overflowing or trying to
// materialize an enormous DP table.
func TestSolveDPCapacityNearUnlimited(t *testing.T) {
	items := []Item{{Weight: 7, Profit: 3}, {Weight: 11, Profit: 5}, {Weight: 2, Profit: 1}}
	for _, capacity := range []int64{math.MaxInt64, math.MaxInt64 - 1, 1 << 40} {
		sol, err := SolveDP(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if len(sol.Take) != len(items) || sol.Profit != 9 || sol.Weight != 20 {
			t.Fatalf("capacity %d: got %+v, want everything taken", capacity, sol)
		}
		tr, err := TraceDP(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Value) != 21 {
			t.Fatalf("capacity %d: trace materialized %d entries, want 21", capacity, len(tr.Value))
		}
		if tr.Capacity() != capacity {
			t.Fatalf("capacity %d: Capacity() = %d", capacity, tr.Capacity())
		}
		if tr.At(capacity-1) != 9 || tr.Marginal(1000) != 0 {
			t.Fatalf("capacity %d: flat tail broken: At=%v Marginal=%v",
				capacity, tr.At(capacity-1), tr.Marginal(1000))
		}
	}
}

// TestTraceClampedTail pins the trace table clamping semantics: the table
// stops at the total item weight, but At/Marginal/Capacity still answer
// for the full requested range.
func TestTraceClampedTail(t *testing.T) {
	items := []Item{{Weight: 30, Profit: 2}, {Weight: 20, Profit: 4}}
	tr, err := TraceDP(items, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Value) != 51 {
		t.Fatalf("materialized %d entries, want 51", len(tr.Value))
	}
	if tr.Capacity() != 10000 {
		t.Fatalf("Capacity() = %d, want 10000", tr.Capacity())
	}
	if tr.At(9999) != tr.At(50) || tr.At(9999) != 6 {
		t.Fatalf("flat tail: At(9999) = %v, At(50) = %v", tr.At(9999), tr.At(50))
	}
	if tr.Marginal(60) != 0 {
		t.Fatalf("Marginal(60) = %v beyond the table, want 0", tr.Marginal(60))
	}
	if tr.Marginal(50) != tr.Value[50]-tr.Value[49] {
		t.Fatalf("Marginal(50) = %v", tr.Marginal(50))
	}
}

// TestUnitFastPathMatchesDP verifies the all-unit-weight O(n log n) fast
// path against the general dynamic program bit for bit. Appending one
// zero-profit weight-2 dummy item disables the fast path without changing
// the optimum (the strict-improvement DP never takes a zero-profit item),
// so both code paths solve the same instance.
func TestUnitFastPathMatchesDP(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		n := r.Intn(40) + 1
		unit := make([]Item, n)
		for i := range unit {
			if round%2 == 0 {
				// Tie-heavy: profits drawn from a 3-value set.
				unit[i] = Item{Weight: 1, Profit: float64(r.Intn(3))}
			} else {
				unit[i] = Item{Weight: 1, Profit: r.Float64()}
			}
		}
		capacity := int64(r.Intn(n + 2))

		fast, err := SolveDP(unit, capacity)
		if err != nil {
			t.Fatal(err)
		}
		general, err := SolveDP(append(append([]Item(nil), unit...), Item{Weight: 2, Profit: 0}), capacity)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSolution(fast, general) {
			t.Fatalf("round %d (n=%d, c=%d): fast path %+v != DP %+v",
				round, n, capacity, fast, general)
		}

		// The trace's endpoint must agree bit for bit as well: Figures 2/3
		// depend on the fast path and Figures 4-6 on the trace.
		tr, err := TraceDP(unit, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if tr.At(capacity) != fast.Profit {
			t.Fatalf("round %d: trace endpoint %v != fast-path profit %v",
				round, tr.At(capacity), fast.Profit)
		}
	}
}

// TestGreedyDeterministicTies pins the density sort's explicit secondary
// index key: with every density equal, the greedy must take the lowest
// indexes, identically on every call and on both API forms.
func TestGreedyDeterministicTies(t *testing.T) {
	// 12 items, all density 2.0, in three weight classes.
	items := make([]Item, 12)
	for i := range items {
		w := int64(i%3 + 1)
		items[i] = Item{Weight: w, Profit: float64(2 * w)}
	}
	want, err := SolveGreedy(items, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range want.Take {
		if idx != i {
			t.Fatalf("tie-break not by ascending index: Take = %v", want.Take)
		}
	}
	var s Solver
	for round := 0; round < 10; round++ {
		got, err := s.SolveGreedy(items, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSolution(got, want) {
			t.Fatalf("round %d: %+v != first call %+v", round, got, want)
		}
	}
}

// TestSolverSteadyStateAllocs locks in the tentpole guarantee: once a
// Solver's buffers are warm, repeated solves and traces on same-scale
// instances allocate nothing.
func TestSolverSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	items := randItems(r, 200, false)
	var s Solver
	if _, err := s.SolveDP(items, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TraceDP(items, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SolveGreedy(items, 1000); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.SolveDP(items, 1000); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("steady-state SolveDP: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.TraceDP(items, 1000); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("steady-state TraceDP: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.SolveGreedy(items, 1000); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("steady-state SolveGreedy: %v allocs/op, want 0", allocs)
	}
}

// TestTraceSurvivesSolves pins the documented lifetime split: a trace is
// invalidated only by the next TraceDP, not by intervening Solve* calls on
// the same workspace (UpperBound followed by Select relies on this).
func TestTraceSurvivesSolves(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	items := randItems(r, 50, false)
	var s Solver
	tr, err := s.TraceDP(items, 300)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64(nil), tr.Value...)
	if _, err := s.SolveDP(items, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SolveGreedy(items, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SolveFPTAS(items, 200, 0.3); err != nil {
		t.Fatal(err)
	}
	for b, v := range tr.Value {
		if v != snapshot[b] {
			t.Fatalf("trace[%d] changed from %v to %v after Solve* calls", b, snapshot[b], v)
		}
	}
}
