package knapsack

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"mobicache/internal/rng"
)

func classicItems() []Item {
	return []Item{
		{Weight: 2, Profit: 3},
		{Weight: 3, Profit: 4},
		{Weight: 4, Profit: 5},
		{Weight: 5, Profit: 6},
	}
}

func TestSolveDPClassic(t *testing.T) {
	sol, err := SolveDP(classicItems(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Optimum: items 0 and 1 (weight 5, profit 7).
	if sol.Profit != 7 {
		t.Fatalf("profit = %v, want 7", sol.Profit)
	}
	if sol.Weight != 5 {
		t.Fatalf("weight = %v, want 5", sol.Weight)
	}
	if len(sol.Take) != 2 || sol.Take[0] != 0 || sol.Take[1] != 1 {
		t.Fatalf("take = %v, want [0 1]", sol.Take)
	}
}

func TestSolveDPZeroCapacity(t *testing.T) {
	sol, err := SolveDP(classicItems(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Profit != 0 || len(sol.Take) != 0 {
		t.Fatalf("zero-capacity solution = %+v", sol)
	}
}

func TestSolveDPEmptyItems(t *testing.T) {
	sol, err := SolveDP(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Profit != 0 {
		t.Fatalf("empty instance profit = %v", sol.Profit)
	}
}

func TestSolveDPAllFit(t *testing.T) {
	sol, err := SolveDP(classicItems(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Profit != 18 || sol.Weight != 14 || len(sol.Take) != 4 {
		t.Fatalf("all-fit solution = %+v", sol)
	}
}

func TestErrors(t *testing.T) {
	if _, err := SolveDP(classicItems(), -1); !errors.Is(err, ErrNegativeCapacity) {
		t.Fatalf("negative capacity error = %v", err)
	}
	bad := []Item{{Weight: 0, Profit: 1}}
	if _, err := SolveDP(bad, 5); err == nil {
		t.Fatal("zero-weight item accepted")
	}
	bad = []Item{{Weight: 1, Profit: -1}}
	if _, err := SolveDP(bad, 5); err == nil {
		t.Fatal("negative-profit item accepted")
	}
	bad = []Item{{Weight: 1, Profit: math.NaN()}}
	if _, err := SolveDP(bad, 5); err == nil {
		t.Fatal("NaN-profit item accepted")
	}
	if _, err := TraceDP(bad, 5); err == nil {
		t.Fatal("TraceDP accepted NaN profit")
	}
	if _, err := SolveGreedy(bad, 5); err == nil {
		t.Fatal("SolveGreedy accepted NaN profit")
	}
	if _, err := SolveBB(bad, 5); err == nil {
		t.Fatal("SolveBB accepted NaN profit")
	}
	if _, err := SolveFPTAS(classicItems(), 5, 0); err == nil {
		t.Fatal("FPTAS accepted eps=0")
	}
	if _, err := SolveFPTAS(classicItems(), 5, 1); err == nil {
		t.Fatal("FPTAS accepted eps=1")
	}
	if _, err := SolveFPTAS(classicItems(), -1, 0.5); !errors.Is(err, ErrNegativeCapacity) {
		t.Fatal("FPTAS accepted negative capacity")
	}
	if _, err := TraceDP(classicItems(), -1); !errors.Is(err, ErrNegativeCapacity) {
		t.Fatal("TraceDP accepted negative capacity")
	}
	if _, err := SolveGreedy(classicItems(), -1); !errors.Is(err, ErrNegativeCapacity) {
		t.Fatal("SolveGreedy accepted negative capacity")
	}
	if _, err := SolveBB(classicItems(), -1); !errors.Is(err, ErrNegativeCapacity) {
		t.Fatal("SolveBB accepted negative capacity")
	}
}

func TestTraceMatchesSolveAtEveryCapacity(t *testing.T) {
	items := randomItems(rng.New(5), 12, 10, 50)
	tr, err := TraceDP(items, 60)
	if err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b <= 60; b += 6 {
		sol, err := SolveDP(items, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tr.At(b)-sol.Profit) > 1e-9 {
			t.Fatalf("trace at %d = %v, SolveDP = %v", b, tr.At(b), sol.Profit)
		}
	}
}

func TestTraceMonotone(t *testing.T) {
	items := randomItems(rng.New(7), 30, 20, 100)
	tr, err := TraceDP(items, 300)
	if err != nil {
		t.Fatal(err)
	}
	for b := 1; b < len(tr.Value); b++ {
		if tr.Value[b] < tr.Value[b-1] {
			t.Fatalf("trace decreased at budget %d: %v < %v", b, tr.Value[b], tr.Value[b-1])
		}
	}
	if tr.Capacity() != 300 {
		t.Fatalf("Capacity = %d", tr.Capacity())
	}
}

func TestTraceAtAndMarginal(t *testing.T) {
	tr := &Trace{Value: []float64{0, 1, 3, 3}}
	if tr.At(-5) != 0 || tr.At(10) != 3 || tr.At(2) != 3 {
		t.Fatalf("At clamping wrong: %v %v %v", tr.At(-5), tr.At(10), tr.At(2))
	}
	if tr.Marginal(2) != 2 {
		t.Fatalf("Marginal(2) = %v, want 2", tr.Marginal(2))
	}
	if tr.Marginal(0) != 0 || tr.Marginal(99) != 0 {
		t.Fatal("out-of-range marginal != 0")
	}
}

func TestDPMatchesBranchAndBound(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 30; trial++ {
		items := randomItems(r, 14, 10, 40)
		cap := int64(r.IntRange(0, 80))
		dp, err := SolveDP(items, cap)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := SolveBB(items, cap)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp.Profit-bb.Profit) > 1e-9 {
			t.Fatalf("trial %d: DP profit %v != B&B profit %v (cap %d)", trial, dp.Profit, bb.Profit, cap)
		}
	}
}

func TestDPMatchesBruteForce(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 25; trial++ {
		items := randomItems(r, 10, 8, 30)
		cap := int64(r.IntRange(0, 60))
		dp, err := SolveDP(items, cap)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(items, cap)
		if math.Abs(dp.Profit-want) > 1e-9 {
			t.Fatalf("trial %d: DP %v != brute force %v", trial, dp.Profit, want)
		}
	}
}

func bruteForce(items []Item, capacity int64) float64 {
	best := 0.0
	for mask := 0; mask < 1<<len(items); mask++ {
		var w int64
		var p float64
		for i := range items {
			if mask&(1<<i) != 0 {
				w += items[i].Weight
				p += items[i].Profit
			}
		}
		if w <= capacity && p > best {
			best = p
		}
	}
	return best
}

func TestSolutionFeasibilityProperty(t *testing.T) {
	// Property: every solver returns a feasible solution whose reported
	// profit/weight match its Take set, and DP >= greedy, DP >= FPTAS >=
	// (1-eps) DP.
	f := func(seed uint64, nRaw, capRaw uint16) bool {
		r := rng.New(seed)
		n := int(nRaw%20) + 1
		cap := int64(capRaw % 200)
		items := randomItems(r, n, 10, 30)
		dp, err := SolveDP(items, cap)
		if err != nil || !feasible(items, dp, cap) {
			return false
		}
		gr, err := SolveGreedy(items, cap)
		if err != nil || !feasible(items, gr, cap) {
			return false
		}
		const eps = 0.2
		fp, err := SolveFPTAS(items, cap, eps)
		if err != nil || !feasible(items, fp, cap) {
			return false
		}
		if gr.Profit > dp.Profit+1e-9 {
			return false
		}
		if fp.Profit > dp.Profit+1e-9 {
			return false
		}
		if fp.Profit < (1-eps)*dp.Profit-1e-9 {
			return false
		}
		// Greedy's 1/2 guarantee.
		if gr.Profit < 0.5*dp.Profit-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func feasible(items []Item, sol Solution, capacity int64) bool {
	var w int64
	var p float64
	seen := make(map[int]bool)
	for _, i := range sol.Take {
		if i < 0 || i >= len(items) || seen[i] {
			return false
		}
		seen[i] = true
		w += items[i].Weight
		p += items[i].Profit
	}
	return w <= capacity && w == sol.Weight && math.Abs(p-sol.Profit) < 1e-9
}

func TestGreedyFallsBackToBestSingle(t *testing.T) {
	// Density order would pick the small item first and then nothing else
	// fits; the single large item is better.
	items := []Item{
		{Weight: 1, Profit: 2},   // density 2
		{Weight: 10, Profit: 10}, // density 1
	}
	sol, err := SolveGreedy(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Profit != 10 || len(sol.Take) != 1 || sol.Take[0] != 1 {
		t.Fatalf("greedy fallback solution = %+v", sol)
	}
}

func TestFPTASZeroProfit(t *testing.T) {
	items := []Item{{Weight: 5, Profit: 0}}
	sol, err := SolveFPTAS(items, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Profit != 0 || len(sol.Take) != 0 {
		t.Fatalf("zero-profit FPTAS solution = %+v", sol)
	}
}

func TestFPTASQualityImprovesWithEps(t *testing.T) {
	items := randomItems(rng.New(17), 40, 30, 100)
	dp, err := SolveDP(items, 600)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := SolveFPTAS(items, 600, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := SolveFPTAS(items, 600, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Profit < loose.Profit-1e-9 {
		t.Fatalf("tight eps produced worse solution: %v < %v", tight.Profit, loose.Profit)
	}
	if tight.Profit < 0.99*dp.Profit-1e-9 {
		t.Fatalf("FPTAS(0.01) profit %v below guarantee vs optimum %v", tight.Profit, dp.Profit)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(classicItems()); err != nil {
		t.Fatalf("valid items rejected: %v", err)
	}
	if err := Validate([]Item{{Weight: 1, Profit: math.Inf(1)}}); err == nil {
		t.Fatal("infinite profit accepted")
	}
}

func TestDensityOrderDeterministicTies(t *testing.T) {
	items := []Item{{Weight: 2, Profit: 2}, {Weight: 3, Profit: 3}, {Weight: 1, Profit: 1}}
	order := densityOrder(items)
	// All densities equal: stable order preserves index order.
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("tie order = %v, want [0 1 2]", order)
	}
}

func randomItems(r *rng.Source, n int, maxW int64, maxP float64) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Weight: int64(r.IntRange(1, int(maxW))),
			Profit: r.FloatRange(0, maxP),
		}
	}
	return items
}
