package knapsack

import (
	"encoding/binary"
	"math"
	"slices"
	"testing"
)

// FuzzSolveDP feeds arbitrary byte-encoded instances to the exact solver
// and asserts structural invariants: no panic, any accepted solution
// respects the capacity, its reported profit/weight match its Take set,
// and the greedy heuristic never beats it. Item weights/profits are
// decoded from 9-byte records (uint8 weight, float64 profit) so the
// fuzzer can mutate instances field by field.
func FuzzSolveDP(f *testing.F) {
	seed := func(capacity int64, pairs ...any) []byte {
		buf := binary.AppendVarint(nil, capacity)
		for i := 0; i < len(pairs); i += 2 {
			buf = append(buf, byte(pairs[i].(int)))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pairs[i+1].(float64)))
		}
		return buf
	}
	f.Add(seed(10, 3, 2.5, 1, 0.75, 7, 4.0))
	f.Add(seed(0, 1, 1.0))
	f.Add(seed(-5, 2, 3.0))
	f.Add(seed(1<<40, 1, 0.0, 1, 1.0, 1, 2.0)) // unit fast path
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		capacity, n := binary.Varint(data)
		if n <= 0 {
			return
		}
		data = data[n:]
		var items []Item
		for len(data) >= 9 && len(items) < 24 {
			w := int64(data[0])
			p := math.Float64frombits(binary.LittleEndian.Uint64(data[1:9]))
			items = append(items, Item{Weight: w, Profit: p})
			data = data[9:]
		}
		sol, err := SolveDP(items, capacity)
		if err != nil {
			return // invalid instance rejected cleanly, nothing to check
		}
		if capacity >= 0 && sol.Weight > capacity {
			t.Fatalf("solution weight %d exceeds capacity %d", sol.Weight, capacity)
		}
		var weight int64
		profit := 0.0
		prev := -1
		for _, i := range sol.Take {
			if i <= prev || i >= len(items) {
				t.Fatalf("take %v not strictly ascending within range", sol.Take)
			}
			prev = i
			weight += items[i].Weight
			profit += items[i].Profit
		}
		if weight != sol.Weight {
			t.Fatalf("reported weight %d != recomputed %d", sol.Weight, weight)
		}
		if math.Abs(profit-sol.Profit) > 1e-6*(1+math.Abs(profit)) {
			t.Fatalf("reported profit %v != recomputed %v", sol.Profit, profit)
		}
		greedy, err := SolveGreedy(items, capacity)
		if err != nil {
			t.Fatalf("greedy rejected an instance the DP accepted: %v", err)
		}
		if greedy.Profit > sol.Profit+1e-6*(1+sol.Profit) {
			t.Fatalf("greedy %v beat the exact DP %v", greedy.Profit, sol.Profit)
		}
	})
}

// FuzzIncremental feeds byte-encoded edit scripts to one IncrementalSolver
// and cross-checks every step against a cold SolveDP: identical profit,
// weight, and Take on the exact path, regardless of how the fuzzer
// interleaves profit edits, item churn, and capacity moves. Each 3-byte
// record is one edit: opcode, position selector, value.
func FuzzIncremental(f *testing.F) {
	f.Add([]byte{0, 1, 50, 1, 2, 9, 3, 0, 7, 4, 1, 0, 5, 0, 30})
	f.Add([]byte{3, 0, 1, 3, 0, 2, 3, 0, 3, 5, 0, 200})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		items := []Item{{Weight: 3, Profit: 2.5}, {Weight: 7, Profit: 4}, {Weight: 1, Profit: 0.75}}
		capacity := int64(8)
		inc := NewIncrementalSolver()
		ref := NewSolver()
		for step := 0; step < 32 && len(data) >= 3; step++ {
			op, pos, val := data[0], int(data[1]), data[2]
			data = data[3:]
			switch op % 6 {
			case 0: // profit edit (val==255 tombstones)
				if len(items) > 0 {
					p := float64(val) / 16
					if val == 255 {
						p = 0
					}
					items[pos%len(items)].Profit = p
				}
			case 1: // weight edit
				if len(items) > 0 {
					items[pos%len(items)].Weight = int64(val%40) + 1
				}
			case 2: // append
				if len(items) < 24 {
					items = append(items, Item{Weight: int64(val%40) + 1, Profit: float64(pos) / 16})
				}
			case 3: // delete with positional shift
				if len(items) > 0 {
					i := pos % len(items)
					items = append(items[:i], items[i+1:]...)
				}
			case 4: // capacity move
				capacity = int64(pos)*4 + int64(val)
			case 5: // no-op tick
			}
			got, err := inc.Solve(items, capacity)
			if err != nil {
				t.Fatalf("step %d: %v (items %v cap %d)", step, err, items, capacity)
			}
			want, err := ref.SolveDP(items, capacity)
			if err != nil {
				t.Fatalf("step %d: reference: %v", step, err)
			}
			if got.Profit != want.Profit || got.Weight != want.Weight || !slices.Equal(got.Take, want.Take) {
				t.Fatalf("step %d: incremental (%v, %d, %v) != DP (%v, %d, %v)\nitems %v cap %d",
					step, got.Profit, got.Weight, got.Take, want.Profit, want.Weight, want.Take, items, capacity)
			}
		}
	})
}
