// Incremental warm-start solving. Successive selection instances barely
// change between ticks — a handful of profits drift, items join or leave,
// the budget wiggles — yet the cold DP re-derives every row from scratch.
// IncrementalSolver keeps the previous instance, its full decision table,
// and periodic DP row checkpoints, and on each call:
//
//  1. diffs the new instance against the committed one (positional
//     compare from both ends);
//  2. serves unchanged instances straight from the stored table
//     (reconstruction only — capacity moves within the materialized
//     width are free);
//  3. otherwise resumes the DP from the checkpoint at or before the
//     first changed item, stopping early once the recomputed row
//     reconverges with the stored checkpoints past the last changed
//     item (sound because a DP row is a pure function of the preceding
//     row and the remaining items);
//  4. falls back to a full solve when the diff reaches back far enough
//     that resuming would do no less work, or when the required table
//     width grows.
//
// The recomputation inner loop processes item pairs fused over one pass
// of the value row, which halves row traffic; the fusion is arranged so
// every float is produced by the exact operation sequence of the
// sequential loop, keeping decisions — and therefore Take — bit-identical
// to Solver.SolveDP.
//
// Setting CertEps > 0 enables an approximate first pass: a density-greedy
// lower bound and, failing that, a capacity-quantized DP, each certified
// against the fractional upper bound. A solution is returned early only
// when its profit is provably >= (1-CertEps) times the optimum; otherwise
// the solver escalates to the exact path above.
package knapsack

import "sort"

// quantCols bounds the number of capacity columns the certified
// quantized pass materializes; the quantization step is
// ceil(capacity/quantCols).
const quantCols = 256

// SolverStats counts how IncrementalSolver calls were served. Cached,
// warm, unit, and certified solves all avoid a cold full-width DP.
type SolverStats struct {
	// FullSolves counts cold solves: first calls, width growth, and
	// diffs too large to warm-start.
	FullSolves uint64
	// WarmSolves counts solves resumed from a row checkpoint.
	WarmSolves uint64
	// CachedHits counts solves served purely by reconstruction because
	// the instance was unchanged and the capacity stayed within the
	// materialized table.
	CachedHits uint64
	// UnitSolves counts all-unit-weight instances served by the top-k
	// fast path.
	UnitSolves uint64
	// CertifiedSolves counts solves served by the approximate pass with
	// a (1-CertEps) optimality certificate.
	CertifiedSolves uint64
	// Escalations counts certified-pass attempts that failed to certify
	// and fell through to the exact path.
	Escalations uint64
}

// IncrementalSolver is a reusable exact solver that warm-starts each
// solve from the previous one. With CertEps == 0 (the default) every
// solution is bit-identical to Solver.SolveDP on the same instance —
// profit, weight, and Take. With CertEps > 0 an approximate pass may
// serve a solution instead, but only with a certificate that its profit
// is >= (1-CertEps) times the optimum.
//
// Like Solver, an IncrementalSolver is not safe for concurrent use and
// the returned Solution aliases workspace memory, valid until the next
// call. Unlike Solver, the caller should keep item positions stable
// across calls — the diff is positional, so reordering an unchanged
// instance reads as a full rewrite.
type IncrementalSolver struct {
	// CertEps, when positive, permits certified approximate solutions
	// within a factor (1-CertEps) of optimal.
	CertEps float64

	sol Solver // unit fast path, density order, greedy machinery

	items []Item // committed instance the stored DP state describes
	valid bool
	width int // materialized capacity columns 0..width
	words int // bitset words per decision row
	// stride is the checkpoint interval in items, fixed at full-solve
	// time so warm resumes can index stored rows; always even so fused
	// item pairs never straddle a checkpoint boundary.
	stride int

	value     []float64 // committed final DP row (width+1)
	work      []float64 // in-progress row during recomputation
	decisions []uint64  // flat n x words decision bitsets
	ckpt      []float64 // flat checkpoint rows: row t is the value row
	// after items [0, (t+1)*stride) have been processed
	take []int

	qItems []Item // certified pass: quantized-weight instance
	ctake  []int  // certified pass: Take backing store

	stats SolverStats
}

// NewIncrementalSolver returns an empty solver; buffers grow on first
// use and persist across calls.
func NewIncrementalSolver() *IncrementalSolver { return &IncrementalSolver{} }

// Stats returns a snapshot of the solve-path counters.
func (s *IncrementalSolver) Stats() SolverStats { return s.stats }

// Reset discards the committed instance and DP state (the next solve is
// cold) while keeping the allocated buffers and counters.
func (s *IncrementalSolver) Reset() {
	s.items = s.items[:0]
	s.valid = false
}

// Solve solves the instance, reusing as much of the previous solve as
// the diff allows. See the type doc for result guarantees and lifetime.
func (s *IncrementalSolver) Solve(items []Item, capacity int64) (Solution, error) {
	if capacity < 0 {
		return Solution{}, ErrNegativeCapacity
	}
	if err := Validate(items); err != nil {
		return Solution{}, err
	}
	if unitWeights(items) {
		s.stats.UnitSolves++
		return s.sol.solveUnit(items, clampCapacity(items, capacity)), nil
	}
	needW := clampCapacity(items, capacity)
	first, last, same := s.diff(items)
	if s.valid && same && needW <= s.width {
		s.stats.CachedHits++
		return s.reconstruct(items, needW), nil
	}
	if s.CertEps > 0 {
		if sol, ok := s.solveCertified(items, capacity, needW); ok {
			s.stats.CertifiedSolves++
			return sol, nil
		}
		s.stats.Escalations++
	}
	s.solveExact(items, needW, first, last)
	return s.reconstruct(items, needW), nil
}

// diff locates the changed span of the new instance against the
// committed one. first is the index of the first differing position
// (len of the common prefix); last is the index of the last differing
// position, or first-1 when the instances are identical. When the
// lengths differ no aligned suffix exists, so last is pinned to the
// final index to disable early stopping.
func (s *IncrementalSolver) diff(items []Item) (first, last int, same bool) {
	oldN, n := len(s.items), len(items)
	minN := oldN
	if n < minN {
		minN = n
	}
	for first < minN && items[first] == s.items[first] {
		first++
	}
	if oldN != n {
		return first, n - 1, false
	}
	last = n - 1
	for last >= first && items[last] == s.items[last] {
		last--
	}
	return first, last, last < first
}

// solveExact brings the stored DP state up to date for the new instance,
// choosing between a checkpoint resume and a cold solve by estimated row
// work.
func (s *IncrementalSolver) solveExact(items []Item, needW, first, last int) {
	n := len(items)
	if !s.valid || needW > s.width {
		s.fullSolve(items, needW)
		return
	}
	start := first / s.stride * s.stride
	// Resuming recomputes (n-start) rows at the stored width; a cold
	// solve recomputes n rows at the (possibly narrower) needed width.
	// Take whichever touches fewer cells.
	if start == 0 || n*(needW+1) < (n-start)*(s.width+1) {
		s.fullSolve(items, needW)
		return
	}
	s.warmSolve(items, last, start)
	s.stats.WarmSolves++
}

// strideFor picks the checkpoint interval: every 32 items, doubling so
// no instance stores more than ~64 checkpoint rows. Always even.
func strideFor(n int) int {
	stride := 32
	for stride*64 < n {
		stride *= 2
	}
	return stride
}

// fullSolve re-solves from scratch at exactly the needed width and
// commits the instance.
func (s *IncrementalSolver) fullSolve(items []Item, needW int) {
	n := len(items)
	s.width = needW
	s.words = (needW + 1 + 63) / 64
	s.stride = strideFor(n)
	cols := needW + 1
	s.work = growFloats(s.work, cols)
	s.value = growFloats(s.value, cols)
	s.decisions = growWords(s.decisions, n*s.words)
	s.ckpt = growFloats(s.ckpt, n/s.stride*cols)
	s.runRows(items, 0, -1, false)
	s.value, s.work = s.work, s.value
	s.commit(items)
	s.stats.FullSolves++
}

// warmSolve resumes the DP at the checkpoint boundary start (a stride
// multiple <= the first changed item), reusing all rows before it.
func (s *IncrementalSolver) warmSolve(items []Item, last, start int) {
	n := len(items)
	cols := s.width + 1
	// Resize the decision table preserving the reused prefix rows.
	if need := n * s.words; cap(s.decisions) < need {
		grown := make([]uint64, need)
		copy(grown, s.decisions[:start*s.words])
		s.decisions = grown
	} else {
		s.decisions = s.decisions[:need]
	}
	// Likewise the checkpoint rows before the resume point.
	if need := n / s.stride * cols; cap(s.ckpt) < need {
		grown := make([]float64, need)
		copy(grown, s.ckpt[:start/s.stride*cols])
		s.ckpt = grown
	} else {
		s.ckpt = s.ckpt[:need]
	}
	copy(s.work[:cols], s.ckpt[(start/s.stride-1)*cols:])
	// Early stopping needs the old suffix aligned with the new one,
	// which a length change rules out (diff pins last accordingly).
	stopped := s.runRows(items, start, last, n == len(s.items))
	if !stopped {
		s.value, s.work = s.work, s.value
	}
	s.commit(items)
}

// runRows recomputes DP rows for items [start, len(items)) into s.work,
// rewriting their decision bitsets and the checkpoints it passes. With
// earlyOK set it compares the working row against the stored checkpoint
// at each boundary past the last changed item and stops on equality: the
// remaining rows are a pure function of an identical row and identical
// items, so the stored decisions — and s.value — remain exact. Returns
// whether it stopped early (s.work is then dead and s.value still
// current).
func (s *IncrementalSolver) runRows(items []Item, start, last int, earlyOK bool) bool {
	n := len(items)
	cols := s.width + 1
	for i := start; i < n; {
		if i+1 < n {
			s.rowPair(items, i)
			i += 2
		} else {
			s.rowOne(items, i)
			i++
		}
		if i%s.stride == 0 {
			ck := s.ckpt[(i/s.stride-1)*cols : i/s.stride*cols]
			if earlyOK && i > last && floatsEqual(s.work, ck) {
				return true
			}
			copy(ck, s.work)
		}
	}
	return false
}

func floatsEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rowOne processes one item exactly like Solver.SolveDP's inner loop.
func (s *IncrementalSolver) rowOne(items []Item, i int) {
	row := s.decisions[i*s.words : (i+1)*s.words]
	clear(row)
	s.applyRow(int(items[i].Weight), items[i].Profit, row)
}

// applyRow relaxes the working row with one item of weight w and profit
// p, marking improvements in row.
func (s *IncrementalSolver) applyRow(w int, p float64, row []uint64) {
	work := s.work
	if w > s.width {
		return
	}
	for cap := s.width; cap >= w; cap-- {
		if cand := work[cap-w] + p; cand > work[cap] {
			work[cap] = cand
			row[cap/64] |= 1 << (cap % 64)
		}
	}
}

// rowPair processes items i and i+1 fused over a single pass of the
// working row. For capacities holding both items the four candidate
// values are formed by the same float operation sequence the sequential
// two-pass loop performs (addition order preserved; max distributes over
// rounding because rounding is monotone), so the decision bits — and
// every stored row — are bit-identical to processing the items one at a
// time.
func (s *IncrementalSolver) rowPair(items []Item, i int) {
	rowi := s.decisions[i*s.words : (i+1)*s.words]
	rowj := s.decisions[(i+1)*s.words : (i+2)*s.words]
	clear(rowi)
	clear(rowj)
	wi, wj := int(items[i].Weight), int(items[i+1].Weight)
	pi, pj := items[i].Profit, items[i+1].Profit
	c := s.width
	if wi > c {
		s.applyRow(wj, pj, rowj)
		return
	}
	if wj > c {
		s.applyRow(wi, pi, rowi)
		return
	}
	work := s.work
	lo := wi + wj
	for cap := c; cap >= lo; cap-- {
		a := work[cap]
		vi := a
		if b := work[cap-wi] + pi; b > a {
			vi = b
			rowi[cap/64] |= 1 << (cap % 64)
		}
		cj := work[cap-wj] + pj
		if d := (work[cap-lo] + pi) + pj; d > cj {
			cj = d
		}
		if cj > vi {
			work[cap] = cj
			rowj[cap/64] |= 1 << (cap % 64)
		} else if vi > a {
			work[cap] = vi
		}
	}
	// Capacities below wi+wj hold at most one of the pair; finish them
	// sequentially (item i first, exactly as the two-pass loop would).
	hi := lo - 1
	if hi > c {
		hi = c
	}
	for cap := hi; cap >= wi; cap-- {
		if cand := work[cap-wi] + pi; cand > work[cap] {
			work[cap] = cand
			rowi[cap/64] |= 1 << (cap % 64)
		}
	}
	for cap := hi; cap >= wj; cap-- {
		if cand := work[cap-wj] + pj; cand > work[cap] {
			work[cap] = cand
			rowj[cap/64] |= 1 << (cap % 64)
		}
	}
}

// reconstruct walks the committed decision table at capacity needW,
// which must be within the materialized width. Columns of a wider table
// coincide with those of a narrower one, so the result is exactly
// SolveDP(items, needW).
func (s *IncrementalSolver) reconstruct(items []Item, needW int) Solution {
	take := s.take[:0]
	remaining := needW
	var weight int64
	for i := len(items) - 1; i >= 0; i-- {
		if s.decisions[i*s.words+remaining/64]&(1<<(remaining%64)) != 0 {
			take = append(take, i)
			weight += items[i].Weight
			remaining -= int(items[i].Weight)
		}
	}
	reverse(take)
	s.take = take
	return Solution{Take: take, Profit: s.value[needW], Weight: weight}
}

// commit records items as the instance the stored DP state describes.
func (s *IncrementalSolver) commit(items []Item) {
	s.items = append(s.items[:0], items...)
	s.valid = true
}

// solveCertified attempts the approximate pass: a density-greedy lower
// bound and then a capacity-quantized DP, either returned only when its
// profit reaches (1-CertEps) times the fractional upper bound — a sound
// certificate since the fractional relaxation dominates the optimum.
// The quantized instance rounds weights up (ceil(w/q)) against a
// rounded-down capacity, so any quantized-feasible set is feasible for
// the true instance; profits are untouched, so the DP's profit is the
// true profit. Reports ok=false when neither bound certifies.
func (s *IncrementalSolver) solveCertified(items []Item, capacity int64, needW int) (Solution, bool) {
	order := s.sol.densityOrder(items)
	remaining := capacity
	ub := 0.0
	for _, i := range order {
		it := items[i]
		if it.Weight <= remaining {
			remaining -= it.Weight
			ub += it.Profit
		} else {
			if remaining > 0 {
				ub += it.Profit * float64(remaining) / float64(it.Weight)
			}
			break
		}
	}
	threshold := (1 - s.CertEps) * ub

	// Greedy fill in density order with the best-single-item fallback —
	// the same rule as SolveGreedy, reusing the order sorted above.
	take := s.ctake[:0]
	var profit float64
	var weight int64
	rem := capacity
	for _, i := range order {
		if items[i].Weight <= rem {
			take = append(take, i)
			profit += items[i].Profit
			weight += items[i].Weight
			rem -= items[i].Weight
		}
	}
	best := -1
	for i, it := range items {
		if it.Weight <= capacity && (best < 0 || it.Profit > items[best].Profit) {
			best = i
		}
	}
	if best >= 0 && items[best].Profit > profit {
		take = append(take[:0], best)
		profit = items[best].Profit
		weight = items[best].Weight
	}
	s.ctake = take
	if profit >= threshold {
		sort.Ints(take)
		return Solution{Take: take, Profit: profit, Weight: weight}, true
	}

	q := int64((needW + quantCols - 1) / quantCols)
	if q <= 1 {
		return Solution{}, false // quantization would be exact DP anyway
	}
	if cap(s.qItems) < len(items) {
		s.qItems = make([]Item, len(items))
	}
	qi := s.qItems[:len(items)]
	for i, it := range items {
		qi[i] = Item{Weight: (it.Weight + q - 1) / q, Profit: it.Profit}
	}
	qsol, err := s.sol.SolveDP(qi, int64(needW)/q)
	if err != nil || qsol.Profit < threshold || qsol.Profit <= profit {
		return Solution{}, false
	}
	take = append(take[:0], qsol.Take...)
	s.ctake = take
	weight = 0
	for _, i := range take {
		weight += items[i].Weight
	}
	return Solution{Take: take, Profit: qsol.Profit, Weight: weight}, true
}
