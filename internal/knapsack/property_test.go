package knapsack

import (
	"math"
	"testing"

	"mobicache/internal/rng"
)

// randomInstance draws a small random instance: n <= 16 items, mixed
// integer weights, real profits (including occasional zero-profit and
// over-capacity items), and a capacity anywhere from 0 to just past the
// total weight.
func randomInstance(r *rng.Source) ([]Item, int64) {
	n := r.IntRange(0, 16)
	items := make([]Item, n)
	var total int64
	for i := range items {
		items[i] = Item{Weight: int64(r.IntRange(1, 20)), Profit: float64(r.IntRange(0, 1000)) / 100}
		total += items[i].Weight
	}
	capacity := int64(r.IntRange(0, int(total)+5))
	return items, capacity
}

// TestSolversMatchBruteForceProperty drives ~200 random instances and
// checks, against exhaustive enumeration: SolveDP is exactly optimal,
// SolveBB agrees with it, SolveGreedy achieves at least half the optimum
// (its approximation guarantee), and SolveFPTAS is within its 1-eps
// bound. Every solution must also respect the capacity and report a
// profit/weight consistent with its Take set.
func TestSolversMatchBruteForceProperty(t *testing.T) {
	const tol = 1e-9
	r := rng.New(0xA11CE)
	solver := NewSolver()
	for trial := 0; trial < 200; trial++ {
		items, capacity := randomInstance(r)
		opt := bruteForce(items, capacity)

		check := func(name string, sol Solution, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("trial %d %s: %v (items %v cap %d)", trial, name, err, items, capacity)
			}
			if sol.Weight > capacity {
				t.Fatalf("trial %d %s: weight %d exceeds capacity %d", trial, name, sol.Weight, capacity)
			}
			var weight int64
			profit := 0.0
			prev := -1
			for _, i := range sol.Take {
				if i <= prev || i >= len(items) {
					t.Fatalf("trial %d %s: take %v not strictly ascending in range", trial, name, sol.Take)
				}
				prev = i
				weight += items[i].Weight
				profit += items[i].Profit
			}
			if weight != sol.Weight || math.Abs(profit-sol.Profit) > tol {
				t.Fatalf("trial %d %s: reported (%v, %d) != recomputed (%v, %d)", trial, name, sol.Profit, sol.Weight, profit, weight)
			}
			if sol.Profit > opt+tol {
				t.Fatalf("trial %d %s: profit %v beats the optimum %v", trial, name, sol.Profit, opt)
			}
		}

		dp, err := solver.SolveDP(items, capacity)
		check("dp", dp, err)
		if math.Abs(dp.Profit-opt) > tol {
			t.Fatalf("trial %d: DP profit %v != brute-force optimum %v (items %v cap %d)", trial, dp.Profit, opt, items, capacity)
		}

		bb, err := SolveBB(items, capacity)
		check("bb", bb, err)
		if math.Abs(bb.Profit-opt) > tol {
			t.Fatalf("trial %d: BB profit %v != optimum %v", trial, bb.Profit, opt)
		}

		greedy, err := solver.SolveGreedy(items, capacity)
		check("greedy", greedy, err)
		if greedy.Profit < opt/2-tol {
			t.Fatalf("trial %d: greedy profit %v below half the optimum %v (items %v cap %d)", trial, greedy.Profit, opt, items, capacity)
		}

		const eps = 0.25
		fptas, err := solver.SolveFPTAS(items, capacity, eps)
		check("fptas", fptas, err)
		if fptas.Profit < (1-eps)*opt-tol {
			t.Fatalf("trial %d: FPTAS profit %v below (1-eps) x optimum %v", trial, fptas.Profit, opt)
		}
	}
}

// TestUnitFastPathMatchesGeneralDPProperty pins the claim in solveUnit's
// doc comment: on all-unit-weight instances the fast path is bit-identical
// to the general DP (forced by perturbing one weight to 1 via a shadow
// instance with an extra general-path item removed again).
func TestUnitFastPathMatchesGeneralDPProperty(t *testing.T) {
	r := rng.New(0xBEEF)
	solver := NewSolver()
	for trial := 0; trial < 200; trial++ {
		n := r.IntRange(1, 16)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Weight: 1, Profit: float64(r.IntRange(0, 500)) / 100}
		}
		capacity := int64(r.IntRange(0, n+2))
		fast, err := solver.SolveDP(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		// Shadow instance scaled x2 with capacity x2 takes the general
		// DP path and must choose the same set with the same profit.
		scaled := make([]Item, n)
		for i, it := range items {
			scaled[i] = Item{Weight: 2, Profit: it.Profit}
		}
		general, err := SolveDP(scaled, 2*capacity)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Profit != general.Profit {
			t.Fatalf("trial %d: unit fast path profit %v != general DP %v (items %v cap %d)", trial, fast.Profit, general.Profit, items, capacity)
		}
	}
}
