// Package knapsack implements the 0/1 knapsack solvers the paper's
// on-demand download selection reduces to (Section 2): an exact dynamic
// program that also yields the full best-value-per-capacity trace the
// Section 4 solution-space analysis plots, a density-greedy heuristic, a
// fully polynomial-time approximation scheme (FPTAS), and a depth-first
// branch-and-bound solver. Item weights are integral "units of data";
// profits are real-valued client benefits.
//
// The solvers come in two forms: the package-level functions, which
// allocate fresh working memory per call, and the methods on Solver, a
// reusable workspace whose buffers persist across calls so the per-tick
// hot path is allocation-free at steady state.
package knapsack

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Item is one candidate object: Weight is its size in data units and
// Profit the total benefit of downloading it.
type Item struct {
	Weight int64
	Profit float64
}

// Solution is the outcome of a solve: the chosen item indexes (ascending),
// their total profit, and their total weight.
type Solution struct {
	Take   []int
	Profit float64
	Weight int64
}

// Validate checks items for solver preconditions: positive weights and
// non-negative, finite profits.
func Validate(items []Item) error {
	for i, it := range items {
		if it.Weight <= 0 {
			return fmt.Errorf("knapsack: item %d has non-positive weight %d", i, it.Weight)
		}
		if it.Profit < 0 || math.IsNaN(it.Profit) || math.IsInf(it.Profit, 0) {
			return fmt.Errorf("knapsack: item %d has invalid profit %v", i, it.Profit)
		}
	}
	return nil
}

// ErrNegativeCapacity is returned when the capacity is negative.
var ErrNegativeCapacity = errors.New("knapsack: negative capacity")

// Solver is a reusable solver workspace. Its methods compute the same
// results as the package-level functions but keep every internal buffer
// (DP value rows, decision bitsets, sort and scratch slices) between
// calls, so repeated solves over same-scale instances allocate nothing.
//
// A Solver is not safe for concurrent use, and the Solution.Take slice
// and *Trace returned by its methods alias workspace memory: they are
// valid only until the next call of the same kind on the workspace.
// Solutions are invalidated by the next Solve* call; traces by the next
// TraceDP call (a trace survives intervening Solve* calls).
type Solver struct {
	value     []float64 // DP best-value row (SolveDP)
	decisions []uint64  // flat n x words decision bitsets (SolveDP)
	traceVal  []float64 // DP value row for TraceDP, kept separate so a
	// trace stays valid while the same workspace keeps solving
	trace  Trace
	take   []int // Take backing store for returned Solutions
	order  []int // item permutation for greedy / unit fast path
	byDens densitySorter
	byProf profitSorter
	scaled []int   // FPTAS scaled profits
	minWt  []int64 // FPTAS min-weight-per-profit row
	choice []uint64
}

// NewSolver returns an empty workspace; buffers grow on first use.
func NewSolver() *Solver { return &Solver{} }

// totalWeight returns the sum of all item weights, saturating at
// math.MaxInt64 (weights are validated positive, so wraparound shows up
// as a negative running sum).
func totalWeight(items []Item) int64 {
	var sum int64
	for _, it := range items {
		sum += it.Weight
		if sum < 0 {
			return math.MaxInt64
		}
	}
	return sum
}

// clampCapacity bounds the DP table size: beyond the total item weight
// extra capacity cannot change any solution, so budgets near
// core.Unlimited (math.MaxInt64) no longer overflow int on 32-bit
// platforms or attempt absurd table allocations on 64-bit ones.
func clampCapacity(items []Item, capacity int64) int {
	if tw := totalWeight(items); capacity > tw {
		capacity = tw
	}
	return int(capacity)
}

// growFloats returns buf resized to n elements, all zero, reusing its
// backing array when large enough.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// growWords is growFloats for bitset backing stores.
func growWords(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// SolveDP solves the instance exactly by dynamic programming over
// capacity, in O(n·min(capacity, Σweights)) time. All-unit-weight
// instances (the paper's Section 3 workloads) take an O(n log n)
// top-k-by-profit fast path instead. See the Solver doc for the lifetime
// of the returned Take slice.
func (s *Solver) SolveDP(items []Item, capacity int64) (Solution, error) {
	if capacity < 0 {
		return Solution{}, ErrNegativeCapacity
	}
	if err := Validate(items); err != nil {
		return Solution{}, err
	}
	c := clampCapacity(items, capacity)
	if unitWeights(items) {
		return s.solveUnit(items, c), nil
	}
	n := len(items)
	s.value = growFloats(s.value, c+1)
	value := s.value
	// One bitset row of decisions per item, in one flat allocation.
	words := (c + 1 + 63) / 64
	s.decisions = growWords(s.decisions, n*words)

	for i, it := range items {
		row := s.decisions[i*words : (i+1)*words]
		w := int(it.Weight)
		if w <= c {
			for cap := c; cap >= w; cap-- {
				cand := value[cap-w] + it.Profit
				if cand > value[cap] {
					value[cap] = cand
					row[cap/64] |= 1 << (cap % 64)
				}
			}
		}
	}

	sol := Solution{Profit: value[c], Take: s.take[:0]}
	remaining := c
	for i := n - 1; i >= 0; i-- {
		if s.decisions[i*words+remaining/64]&(1<<(remaining%64)) != 0 {
			sol.Take = append(sol.Take, i)
			sol.Weight += items[i].Weight
			remaining -= int(items[i].Weight)
		}
	}
	reverse(sol.Take)
	s.take = sol.Take
	return sol, nil
}

// unitWeights reports whether every item weighs exactly one data unit —
// the Figure 2/3 workloads, where the capacity-indexed DP degenerates to
// picking the top-capacity items by profit.
func unitWeights(items []Item) bool {
	if len(items) == 0 {
		return false
	}
	for _, it := range items {
		if it.Weight != 1 {
			return false
		}
	}
	return true
}

// solveUnit is the all-unit-weight fast path: rank items by (profit
// descending, index ascending) and take the best c with positive profit.
// That is exactly the set the strict-improvement DP reconstructs — equal
// profits never displace an earlier item — and summing the taken profits
// in ascending index order reproduces the DP's accumulation order, so
// the result is bit-identical to the dynamic program (the equivalence is
// enforced by tests).
func (s *Solver) solveUnit(items []Item, c int) Solution {
	n := len(items)
	order := s.orderIdentity(n)
	s.byProf = profitSorter{items: items, order: order}
	sort.Sort(&s.byProf)
	k := c
	if k > n {
		k = n
	}
	// Zero-profit items are never an improvement for the DP; stop early.
	for k > 0 && items[order[k-1]].Profit <= 0 {
		k--
	}
	take := append(s.take[:0], order[:k]...)
	sort.Ints(take)
	sol := Solution{Take: take, Weight: int64(k)}
	for _, i := range take {
		sol.Profit += items[i].Profit
	}
	s.take = take
	return sol
}

// orderIdentity returns the workspace permutation buffer reset to the
// identity over n items.
func (s *Solver) orderIdentity(n int) []int {
	if cap(s.order) < n {
		s.order = make([]int, n)
	}
	s.order = s.order[:n]
	for i := range s.order {
		s.order[i] = i
	}
	return s.order
}

// profitSorter orders items by decreasing profit with an explicit
// secondary key on index, so equal profits rank deterministically.
type profitSorter struct {
	items []Item
	order []int
}

func (p *profitSorter) Len() int      { return len(p.order) }
func (p *profitSorter) Swap(i, j int) { p.order[i], p.order[j] = p.order[j], p.order[i] }
func (p *profitSorter) Less(i, j int) bool {
	a, b := p.order[i], p.order[j]
	if p.items[a].Profit != p.items[b].Profit {
		return p.items[a].Profit > p.items[b].Profit
	}
	return a < b
}

// SolveDP solves the instance exactly by dynamic programming, allocating
// fresh working memory; use a Solver to amortize allocations across
// repeated calls.
func SolveDP(items []Item, capacity int64) (Solution, error) {
	var s Solver
	return s.SolveDP(items, capacity)
}

// Trace holds the exact best achievable profit for every integral budget
// from 0 to its capacity: Value[b] is the optimum with budget b. This is
// precisely the curve the paper's Figures 4-6 plot ("the algorithm ...
// allows us to observe how the quality of the solution changes as the
// upper bound increases"). The table is only materialized up to the
// total item weight — the curve is flat beyond it — so Value may be
// shorter than Capacity()+1; At and Marginal account for the flat tail.
type Trace struct {
	Value []float64
	// cap records a requested capacity larger than the materialized
	// table (zero for traces built literally from a Value slice).
	cap int64
}

// Capacity returns the largest budget covered by the trace.
func (t *Trace) Capacity() int64 {
	if c := int64(len(t.Value) - 1); t.cap < c {
		return c
	}
	return t.cap
}

// At returns the optimal profit at budget b, clamping b to the traced
// range.
func (t *Trace) At(b int64) float64 {
	if b < 0 {
		return t.Value[0]
	}
	if b >= int64(len(t.Value)) {
		return t.Value[len(t.Value)-1]
	}
	return t.Value[b]
}

// Marginal returns the profit gain of raising the budget from b-1 to b.
func (t *Trace) Marginal(b int64) float64 {
	if b <= 0 || b >= int64(len(t.Value)) {
		return 0
	}
	return t.Value[b] - t.Value[b-1]
}

// TraceDP computes the full best-value-per-capacity curve in
// O(n·min(capacity, Σweights)) time with no reconstruction state. The
// returned trace aliases workspace memory and is valid until the next
// TraceDP call on this workspace (it survives Solve* calls).
func (s *Solver) TraceDP(items []Item, capacity int64) (*Trace, error) {
	if capacity < 0 {
		return nil, ErrNegativeCapacity
	}
	if err := Validate(items); err != nil {
		return nil, err
	}
	c := clampCapacity(items, capacity)
	s.traceVal = growFloats(s.traceVal, c+1)
	value := s.traceVal
	for _, it := range items {
		w := int(it.Weight)
		if w > c {
			continue
		}
		for cap := c; cap >= w; cap-- {
			if cand := value[cap-w] + it.Profit; cand > value[cap] {
				value[cap] = cand
			}
		}
	}
	s.trace = Trace{Value: value, cap: capacity}
	return &s.trace, nil
}

// TraceDP computes the full best-value-per-capacity curve, allocating a
// fresh table; use a Solver to amortize allocations across repeated
// calls.
func TraceDP(items []Item, capacity int64) (*Trace, error) {
	var s Solver
	return s.TraceDP(items, capacity)
}

// SolveGreedy applies the classic density heuristic: consider items in
// decreasing profit/weight order, taking each that fits. The result is
// then compared against the best single item, which restores the standard
// 1/2-approximation guarantee. See the Solver doc for the lifetime of the
// returned Take slice.
func (s *Solver) SolveGreedy(items []Item, capacity int64) (Solution, error) {
	if capacity < 0 {
		return Solution{}, ErrNegativeCapacity
	}
	if err := Validate(items); err != nil {
		return Solution{}, err
	}
	order := s.densityOrder(items)
	sol := Solution{Take: s.take[:0]}
	remaining := capacity
	for _, i := range order {
		if items[i].Weight <= remaining {
			sol.Take = append(sol.Take, i)
			sol.Profit += items[i].Profit
			sol.Weight += items[i].Weight
			remaining -= items[i].Weight
		}
	}
	// Best single item that fits.
	best := -1
	for i, it := range items {
		if it.Weight <= capacity && (best < 0 || it.Profit > items[best].Profit) {
			best = i
		}
	}
	if best >= 0 && items[best].Profit > sol.Profit {
		sol = Solution{Take: append(sol.Take[:0], best), Profit: items[best].Profit, Weight: items[best].Weight}
	}
	sort.Ints(sol.Take)
	s.take = sol.Take
	return sol, nil
}

// SolveGreedy applies the density heuristic with fresh working memory;
// use a Solver to amortize allocations across repeated calls.
func SolveGreedy(items []Item, capacity int64) (Solution, error) {
	var s Solver
	return s.SolveGreedy(items, capacity)
}

// densityOrder fills the workspace permutation with item indexes sorted
// by decreasing profit/weight density, ties broken by ascending index.
func (s *Solver) densityOrder(items []Item) []int {
	order := s.orderIdentity(len(items))
	s.byDens = densitySorter{items: items, order: order}
	sort.Sort(&s.byDens)
	return order
}

// SolveFPTAS returns a solution with profit at least (1-eps) times the
// optimum, in O(n^3/eps) time independent of capacity magnitude, by
// scaling profits and running the min-weight-per-profit dynamic program.
// See the Solver doc for the lifetime of the returned Take slice.
func (s *Solver) SolveFPTAS(items []Item, capacity int64, eps float64) (Solution, error) {
	if capacity < 0 {
		return Solution{}, ErrNegativeCapacity
	}
	if eps <= 0 || eps >= 1 {
		return Solution{}, fmt.Errorf("knapsack: eps %v out of (0,1)", eps)
	}
	if err := Validate(items); err != nil {
		return Solution{}, err
	}
	n := len(items)
	maxProfit := 0.0
	for _, it := range items {
		if it.Weight <= capacity && it.Profit > maxProfit {
			maxProfit = it.Profit
		}
	}
	if maxProfit == 0 {
		return Solution{Take: s.take[:0]}, nil
	}
	scale := eps * maxProfit / float64(n)
	if cap(s.scaled) < n {
		s.scaled = make([]int, n)
	}
	scaled := s.scaled[:n]
	maxTotal := 0
	for i, it := range items {
		scaled[i] = int(it.Profit / scale)
		if it.Weight <= capacity {
			maxTotal += scaled[i]
		}
	}

	// minWt[p] = least weight achieving scaled profit exactly p.
	const inf = math.MaxInt64
	if cap(s.minWt) < maxTotal+1 {
		s.minWt = make([]int64, maxTotal+1)
	}
	minWeight := s.minWt[:maxTotal+1]
	words := (maxTotal + 1 + 63) / 64
	s.choice = growWords(s.choice, n*words)
	minWeight[0] = 0
	for p := 1; p <= maxTotal; p++ {
		minWeight[p] = inf
	}
	for i, it := range items {
		row := s.choice[i*words : (i+1)*words]
		if it.Weight <= capacity {
			sp := scaled[i]
			for p := maxTotal; p >= sp; p-- {
				if minWeight[p-sp] != inf {
					if cand := minWeight[p-sp] + it.Weight; cand < minWeight[p] {
						minWeight[p] = cand
						row[p/64] |= 1 << (p % 64)
					}
				}
			}
		}
	}
	bestP := 0
	for p := maxTotal; p > 0; p-- {
		if minWeight[p] <= capacity {
			bestP = p
			break
		}
	}
	sol := Solution{Take: s.take[:0]}
	p := bestP
	for i := n - 1; i >= 0; i-- {
		if p > 0 && s.choice[i*words+p/64]&(1<<(p%64)) != 0 {
			sol.Take = append(sol.Take, i)
			sol.Profit += items[i].Profit
			sol.Weight += items[i].Weight
			p -= scaled[i]
		}
	}
	reverse(sol.Take)
	s.take = sol.Take
	return sol, nil
}

// SolveFPTAS runs the approximation scheme with fresh working memory;
// use a Solver to amortize allocations across repeated calls.
func SolveFPTAS(items []Item, capacity int64, eps float64) (Solution, error) {
	var s Solver
	return s.SolveFPTAS(items, capacity, eps)
}

// SolveBB solves the instance exactly by depth-first branch-and-bound
// with the fractional-relaxation upper bound. Exponential in the worst
// case but fast on the correlated instances of Section 4; used to cross-
// check the DP in tests.
func SolveBB(items []Item, capacity int64) (Solution, error) {
	if capacity < 0 {
		return Solution{}, ErrNegativeCapacity
	}
	if err := Validate(items); err != nil {
		return Solution{}, err
	}
	order := densityOrder(items)
	b := &bbState{items: items, order: order, capacity: capacity, bestTake: nil}
	// Seed the incumbent with the greedy solution: a strong initial lower
	// bound prunes most of the tree on large correlated instances.
	if greedy, err := SolveGreedy(items, capacity); err == nil && greedy.Profit > 0 {
		b.bestProfit = greedy.Profit
		b.bestWeight = greedy.Weight
		b.bestTake = append(b.bestTake, greedy.Take...)
	}
	b.search(0, 0, 0, nil)
	sol := Solution{Profit: b.bestProfit, Weight: b.bestWeight}
	sol.Take = append(sol.Take, b.bestTake...)
	sort.Ints(sol.Take)
	return sol, nil
}

type bbState struct {
	items      []Item
	order      []int
	capacity   int64
	bestProfit float64
	bestWeight int64
	bestTake   []int
}

// bound computes the fractional-knapsack upper bound for the subproblem
// starting at position pos with the given used weight and accumulated
// profit.
func (b *bbState) bound(pos int, weight int64, profit float64) float64 {
	remaining := b.capacity - weight
	bound := profit
	for _, i := range b.order[pos:] {
		it := b.items[i]
		if it.Weight <= remaining {
			remaining -= it.Weight
			bound += it.Profit
		} else {
			bound += it.Profit * float64(remaining) / float64(it.Weight)
			break
		}
	}
	return bound
}

func (b *bbState) search(pos int, weight int64, profit float64, take []int) {
	if profit > b.bestProfit {
		b.bestProfit = profit
		b.bestWeight = weight
		b.bestTake = append(b.bestTake[:0], take...)
	}
	if pos >= len(b.order) {
		return
	}
	if b.bound(pos, weight, profit) <= b.bestProfit {
		return
	}
	i := b.order[pos]
	it := b.items[i]
	if weight+it.Weight <= b.capacity {
		b.search(pos+1, weight+it.Weight, profit+it.Profit, append(take, i))
	}
	b.search(pos+1, weight, profit, take)
}

// densitySorter orders items by decreasing profit/weight density with an
// explicit secondary key on index, so equal densities (and profit/weight
// ties in particular) rank deterministically regardless of the sort
// algorithm's stability.
type densitySorter struct {
	items []Item
	order []int
}

func (d *densitySorter) Len() int      { return len(d.order) }
func (d *densitySorter) Swap(i, j int) { d.order[i], d.order[j] = d.order[j], d.order[i] }
func (d *densitySorter) Less(i, j int) bool {
	a, b := d.order[i], d.order[j]
	da := d.items[a].Profit / float64(d.items[a].Weight)
	db := d.items[b].Profit / float64(d.items[b].Weight)
	if da != db {
		return da > db
	}
	return a < b
}

// densityOrder returns item indexes sorted by decreasing profit/weight
// density, ties broken by index for determinism.
func densityOrder(items []Item) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	s := densitySorter{items: items, order: order}
	sort.Sort(&s)
	return order
}

func reverse(v []int) {
	for i, j := 0, len(v)-1; i < j; i, j = i+1, j-1 {
		v[i], v[j] = v[j], v[i]
	}
}
