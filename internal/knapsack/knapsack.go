// Package knapsack implements the 0/1 knapsack solvers the paper's
// on-demand download selection reduces to (Section 2): an exact dynamic
// program that also yields the full best-value-per-capacity trace the
// Section 4 solution-space analysis plots, a density-greedy heuristic, a
// fully polynomial-time approximation scheme (FPTAS), and a depth-first
// branch-and-bound solver. Item weights are integral "units of data";
// profits are real-valued client benefits.
package knapsack

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Item is one candidate object: Weight is its size in data units and
// Profit the total benefit of downloading it.
type Item struct {
	Weight int64
	Profit float64
}

// Solution is the outcome of a solve: the chosen item indexes (ascending),
// their total profit, and their total weight.
type Solution struct {
	Take   []int
	Profit float64
	Weight int64
}

// Validate checks items for solver preconditions: positive weights and
// non-negative, finite profits.
func Validate(items []Item) error {
	for i, it := range items {
		if it.Weight <= 0 {
			return fmt.Errorf("knapsack: item %d has non-positive weight %d", i, it.Weight)
		}
		if it.Profit < 0 || math.IsNaN(it.Profit) || math.IsInf(it.Profit, 0) {
			return fmt.Errorf("knapsack: item %d has invalid profit %v", i, it.Profit)
		}
	}
	return nil
}

// ErrNegativeCapacity is returned when the capacity is negative.
var ErrNegativeCapacity = errors.New("knapsack: negative capacity")

// SolveDP solves the instance exactly by dynamic programming over
// capacity, in O(n·capacity) time and O(n·capacity) bits of memory for
// choice reconstruction.
func SolveDP(items []Item, capacity int64) (Solution, error) {
	if capacity < 0 {
		return Solution{}, ErrNegativeCapacity
	}
	if err := Validate(items); err != nil {
		return Solution{}, err
	}
	n := len(items)
	c := int(capacity)
	value := make([]float64, c+1)
	// One bitset row of decisions per item.
	words := (c + 1 + 63) / 64
	decisions := make([][]uint64, n)

	for i, it := range items {
		row := make([]uint64, words)
		w := int(it.Weight)
		if w <= c {
			for cap := c; cap >= w; cap-- {
				cand := value[cap-w] + it.Profit
				if cand > value[cap] {
					value[cap] = cand
					row[cap/64] |= 1 << (cap % 64)
				}
			}
		}
		decisions[i] = row
	}

	sol := Solution{Profit: value[c]}
	remaining := c
	for i := n - 1; i >= 0; i-- {
		if decisions[i][remaining/64]&(1<<(remaining%64)) != 0 {
			sol.Take = append(sol.Take, i)
			sol.Weight += items[i].Weight
			remaining -= int(items[i].Weight)
		}
	}
	reverse(sol.Take)
	return sol, nil
}

// Trace holds the exact best achievable profit for every integral budget
// from 0 to its capacity: Value[b] is the optimum with budget b. This is
// precisely the curve the paper's Figures 4-6 plot ("the algorithm ...
// allows us to observe how the quality of the solution changes as the
// upper bound increases").
type Trace struct {
	Value []float64
}

// Capacity returns the largest budget covered by the trace.
func (t *Trace) Capacity() int64 { return int64(len(t.Value) - 1) }

// At returns the optimal profit at budget b, clamping b to the traced
// range.
func (t *Trace) At(b int64) float64 {
	if b < 0 {
		return t.Value[0]
	}
	if b >= int64(len(t.Value)) {
		return t.Value[len(t.Value)-1]
	}
	return t.Value[b]
}

// Marginal returns the profit gain of raising the budget from b-1 to b.
func (t *Trace) Marginal(b int64) float64 {
	if b <= 0 || b >= int64(len(t.Value)) {
		return 0
	}
	return t.Value[b] - t.Value[b-1]
}

// TraceDP computes the full best-value-per-capacity curve in
// O(n·capacity) time and O(capacity) memory (no reconstruction).
func TraceDP(items []Item, capacity int64) (*Trace, error) {
	if capacity < 0 {
		return nil, ErrNegativeCapacity
	}
	if err := Validate(items); err != nil {
		return nil, err
	}
	c := int(capacity)
	value := make([]float64, c+1)
	for _, it := range items {
		w := int(it.Weight)
		if w > c {
			continue
		}
		for cap := c; cap >= w; cap-- {
			if cand := value[cap-w] + it.Profit; cand > value[cap] {
				value[cap] = cand
			}
		}
	}
	return &Trace{Value: value}, nil
}

// SolveGreedy applies the classic density heuristic: consider items in
// decreasing profit/weight order, taking each that fits. The result is
// then compared against the best single item, which restores the standard
// 1/2-approximation guarantee.
func SolveGreedy(items []Item, capacity int64) (Solution, error) {
	if capacity < 0 {
		return Solution{}, ErrNegativeCapacity
	}
	if err := Validate(items); err != nil {
		return Solution{}, err
	}
	order := densityOrder(items)
	var sol Solution
	remaining := capacity
	for _, i := range order {
		if items[i].Weight <= remaining {
			sol.Take = append(sol.Take, i)
			sol.Profit += items[i].Profit
			sol.Weight += items[i].Weight
			remaining -= items[i].Weight
		}
	}
	// Best single item that fits.
	best := -1
	for i, it := range items {
		if it.Weight <= capacity && (best < 0 || it.Profit > items[best].Profit) {
			best = i
		}
	}
	if best >= 0 && items[best].Profit > sol.Profit {
		sol = Solution{Take: []int{best}, Profit: items[best].Profit, Weight: items[best].Weight}
	}
	sort.Ints(sol.Take)
	return sol, nil
}

// SolveFPTAS returns a solution with profit at least (1-eps) times the
// optimum, in O(n^3/eps) time independent of capacity magnitude, by
// scaling profits and running the min-weight-per-profit dynamic program.
func SolveFPTAS(items []Item, capacity int64, eps float64) (Solution, error) {
	if capacity < 0 {
		return Solution{}, ErrNegativeCapacity
	}
	if eps <= 0 || eps >= 1 {
		return Solution{}, fmt.Errorf("knapsack: eps %v out of (0,1)", eps)
	}
	if err := Validate(items); err != nil {
		return Solution{}, err
	}
	n := len(items)
	maxProfit := 0.0
	for _, it := range items {
		if it.Weight <= capacity && it.Profit > maxProfit {
			maxProfit = it.Profit
		}
	}
	if maxProfit == 0 {
		return Solution{}, nil
	}
	scale := eps * maxProfit / float64(n)
	scaled := make([]int, n)
	maxTotal := 0
	for i, it := range items {
		scaled[i] = int(it.Profit / scale)
		if it.Weight <= capacity {
			maxTotal += scaled[i]
		}
	}

	// minWeight[p] = least weight achieving scaled profit exactly p.
	const inf = math.MaxInt64
	minWeight := make([]int64, maxTotal+1)
	choice := make([][]uint64, n)
	words := (maxTotal + 1 + 63) / 64
	for p := 1; p <= maxTotal; p++ {
		minWeight[p] = inf
	}
	for i, it := range items {
		row := make([]uint64, words)
		if it.Weight <= capacity {
			sp := scaled[i]
			for p := maxTotal; p >= sp; p-- {
				if minWeight[p-sp] != inf {
					if cand := minWeight[p-sp] + it.Weight; cand < minWeight[p] {
						minWeight[p] = cand
						row[p/64] |= 1 << (p % 64)
					}
				}
			}
		}
		choice[i] = row
	}
	bestP := 0
	for p := maxTotal; p > 0; p-- {
		if minWeight[p] <= capacity {
			bestP = p
			break
		}
	}
	var sol Solution
	p := bestP
	for i := n - 1; i >= 0; i-- {
		if p > 0 && choice[i][p/64]&(1<<(p%64)) != 0 {
			sol.Take = append(sol.Take, i)
			sol.Profit += items[i].Profit
			sol.Weight += items[i].Weight
			p -= scaled[i]
		}
	}
	reverse(sol.Take)
	return sol, nil
}

// SolveBB solves the instance exactly by depth-first branch-and-bound
// with the fractional-relaxation upper bound. Exponential in the worst
// case but fast on the correlated instances of Section 4; used to cross-
// check the DP in tests.
func SolveBB(items []Item, capacity int64) (Solution, error) {
	if capacity < 0 {
		return Solution{}, ErrNegativeCapacity
	}
	if err := Validate(items); err != nil {
		return Solution{}, err
	}
	order := densityOrder(items)
	b := &bbState{items: items, order: order, capacity: capacity, bestTake: nil}
	// Seed the incumbent with the greedy solution: a strong initial lower
	// bound prunes most of the tree on large correlated instances.
	if greedy, err := SolveGreedy(items, capacity); err == nil && greedy.Profit > 0 {
		b.bestProfit = greedy.Profit
		b.bestWeight = greedy.Weight
		b.bestTake = append(b.bestTake, greedy.Take...)
	}
	b.search(0, 0, 0, nil)
	sol := Solution{Profit: b.bestProfit, Weight: b.bestWeight}
	sol.Take = append(sol.Take, b.bestTake...)
	sort.Ints(sol.Take)
	return sol, nil
}

type bbState struct {
	items      []Item
	order      []int
	capacity   int64
	bestProfit float64
	bestWeight int64
	bestTake   []int
}

// bound computes the fractional-knapsack upper bound for the subproblem
// starting at position pos with the given used weight and accumulated
// profit.
func (b *bbState) bound(pos int, weight int64, profit float64) float64 {
	remaining := b.capacity - weight
	bound := profit
	for _, i := range b.order[pos:] {
		it := b.items[i]
		if it.Weight <= remaining {
			remaining -= it.Weight
			bound += it.Profit
		} else {
			bound += it.Profit * float64(remaining) / float64(it.Weight)
			break
		}
	}
	return bound
}

func (b *bbState) search(pos int, weight int64, profit float64, take []int) {
	if profit > b.bestProfit {
		b.bestProfit = profit
		b.bestWeight = weight
		b.bestTake = append(b.bestTake[:0], take...)
	}
	if pos >= len(b.order) {
		return
	}
	if b.bound(pos, weight, profit) <= b.bestProfit {
		return
	}
	i := b.order[pos]
	it := b.items[i]
	if weight+it.Weight <= b.capacity {
		b.search(pos+1, weight+it.Weight, profit+it.Profit, append(take, i))
	}
	b.search(pos+1, weight, profit, take)
}

// densityOrder returns item indexes sorted by decreasing profit/weight
// density, ties broken by index for determinism.
func densityOrder(items []Item) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da := items[order[a]].Profit / float64(items[order[a]].Weight)
		db := items[order[b]].Profit / float64(items[order[b]].Weight)
		return da > db
	})
	return order
}

func reverse(v []int) {
	for i, j := 0, len(v)-1; i < j; i, j = i+1, j-1 {
		v[i], v[j] = v[j], v[i]
	}
}
