package knapsack

import (
	"math"
	"slices"
	"testing"

	"mobicache/internal/rng"
)

// mutateInstance applies one random edit of the kinds the selector's
// slot-stable instance produces tick to tick: profit drift, weight
// change, zero-profit tombstoning, append, delete (positional shift),
// capacity shrink/grow, and occasional bulk churn. It returns the edited
// instance and capacity (the slices may be reallocated).
func mutateInstance(r *rng.Source, items []Item, capacity int64) ([]Item, int64) {
	randItem := func() Item {
		return Item{Weight: int64(r.IntRange(1, 20)), Profit: float64(r.IntRange(0, 1000)) / 100}
	}
	switch op := r.IntRange(0, 7); op {
	case 0: // profit drift
		if len(items) > 0 {
			items[r.IntRange(0, len(items)-1)].Profit = float64(r.IntRange(0, 1000)) / 100
		}
	case 1: // weight change
		if len(items) > 0 {
			items[r.IntRange(0, len(items)-1)].Weight = int64(r.IntRange(1, 20))
		}
	case 2: // tombstone (a departed demand in the selector's slot table)
		if len(items) > 0 {
			items[r.IntRange(0, len(items)-1)].Profit = 0
		}
	case 3: // append (a newly demanded object)
		items = append(items, randItem())
	case 4: // delete at a random position, shifting the suffix
		if len(items) > 0 {
			i := r.IntRange(0, len(items)-1)
			items = append(items[:i], items[i+1:]...)
		}
	case 5: // capacity move
		var total int64
		for _, it := range items {
			total += it.Weight
		}
		capacity = int64(r.IntRange(0, int(total)+5))
	case 6: // bulk churn near the tail
		for k := 0; k < 4 && len(items) > 0; k++ {
			lo := len(items) / 2
			items[r.IntRange(lo, len(items)-1)] = randItem()
		}
	case 7: // no-op tick (instance repeats verbatim)
	}
	return items, capacity
}

// TestIncrementalMatchesDPOverEditSequences drives random edit sequences
// — the randomized property the incremental solver's exactness contract
// is pinned by — and asserts after every edit that Solve returns exactly
// SolveDP's solution: bit-equal profit, equal weight, and an identical
// Take set.
func TestIncrementalMatchesDPOverEditSequences(t *testing.T) {
	r := rng.New(0x17C5)
	for _, size := range []struct {
		name  string
		n     int
		steps int
	}{
		{"small", 12, 60},
		{"medium", 120, 40},
	} {
		t.Run(size.name, func(t *testing.T) {
			for trial := 0; trial < 12; trial++ {
				items := make([]Item, size.n)
				var total int64
				for i := range items {
					items[i] = Item{Weight: int64(r.IntRange(1, 20)), Profit: float64(r.IntRange(0, 1000)) / 100}
					total += items[i].Weight
				}
				capacity := int64(r.IntRange(0, int(total)))
				inc := NewIncrementalSolver()
				ref := NewSolver()
				for step := 0; step < size.steps; step++ {
					got, err := inc.Solve(items, capacity)
					if err != nil {
						t.Fatalf("trial %d step %d: %v", trial, step, err)
					}
					want, err := ref.SolveDP(items, capacity)
					if err != nil {
						t.Fatalf("trial %d step %d: reference: %v", trial, step, err)
					}
					if got.Profit != want.Profit || got.Weight != want.Weight || !slices.Equal(got.Take, want.Take) {
						t.Fatalf("trial %d step %d: incremental (%v, %d, %v) != DP (%v, %d, %v)\nitems %v cap %d",
							trial, step, got.Profit, got.Weight, got.Take, want.Profit, want.Weight, want.Take, items, capacity)
					}
					items, capacity = mutateInstance(r, items, capacity)
				}
			}
		})
	}
}

// TestIncrementalCertifiedWithinEps runs the same edit sequences with
// the certified approximate pass enabled and checks its weaker but still
// hard contract: feasible solutions, internally consistent, and profit
// at least (1-CertEps) times the exact optimum.
func TestIncrementalCertifiedWithinEps(t *testing.T) {
	const eps = 0.1
	const tol = 1e-9
	r := rng.New(0xCE47)
	for trial := 0; trial < 12; trial++ {
		items := make([]Item, 80)
		var total int64
		for i := range items {
			items[i] = Item{Weight: int64(r.IntRange(1, 20)), Profit: float64(r.IntRange(0, 1000)) / 100}
			total += items[i].Weight
		}
		capacity := total / 2
		inc := NewIncrementalSolver()
		inc.CertEps = eps
		ref := NewSolver()
		for step := 0; step < 40; step++ {
			got, err := inc.Solve(items, capacity)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if got.Weight > capacity {
				t.Fatalf("trial %d step %d: weight %d exceeds capacity %d", trial, step, got.Weight, capacity)
			}
			var weight int64
			profit := 0.0
			prev := -1
			for _, i := range got.Take {
				if i <= prev || i >= len(items) {
					t.Fatalf("trial %d step %d: take %v not strictly ascending in range", trial, step, got.Take)
				}
				prev = i
				weight += items[i].Weight
				profit += items[i].Profit
			}
			if weight != got.Weight || math.Abs(profit-got.Profit) > tol {
				t.Fatalf("trial %d step %d: reported (%v, %d) != recomputed (%v, %d)",
					trial, step, got.Profit, got.Weight, profit, weight)
			}
			want, err := ref.SolveDP(items, capacity)
			if err != nil {
				t.Fatal(err)
			}
			if got.Profit < (1-eps)*want.Profit-tol {
				t.Fatalf("trial %d step %d: certified profit %v below (1-eps) x optimum %v",
					trial, step, got.Profit, want.Profit)
			}
			if got.Profit > want.Profit+tol {
				t.Fatalf("trial %d step %d: profit %v beats the optimum %v", trial, step, got.Profit, want.Profit)
			}
			items, capacity = mutateInstance(r, items, capacity)
		}
	}
}

// TestIncrementalStats pins which path serves which call shape: cold
// first solve, cached repeat, capacity moves within the table, a warm
// resume for a tail edit, and a cold re-solve for a head edit.
func TestIncrementalStats(t *testing.T) {
	r := rng.New(0x57A75)
	items := make([]Item, 200)
	var total int64
	for i := range items {
		items[i] = Item{Weight: int64(r.IntRange(1, 20)), Profit: float64(r.IntRange(1, 1000)) / 100}
		total += items[i].Weight
	}
	capacity := total / 2
	inc := NewIncrementalSolver()
	solve := func() {
		t.Helper()
		if _, err := inc.Solve(items, capacity); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(what string, want SolverStats) {
		t.Helper()
		if got := inc.Stats(); got != want {
			t.Fatalf("%s: stats %+v, want %+v", what, got, want)
		}
	}
	solve()
	expect("first solve", SolverStats{FullSolves: 1})
	solve()
	expect("unchanged repeat", SolverStats{FullSolves: 1, CachedHits: 1})
	capacity /= 2
	solve()
	expect("capacity shrink, same items", SolverStats{FullSolves: 1, CachedHits: 2})
	items[len(items)-1].Profit += 1
	solve()
	expect("tail edit", SolverStats{FullSolves: 1, CachedHits: 2, WarmSolves: 1})
	items[0].Profit += 1
	solve()
	expect("head edit", SolverStats{FullSolves: 2, CachedHits: 2, WarmSolves: 1})

	inc.Reset()
	solve()
	expect("post-reset solve", SolverStats{FullSolves: 3, CachedHits: 2, WarmSolves: 1})
}

// TestIncrementalUnitFastPath checks all-unit instances route to the
// top-k path and still match the DP exactly.
func TestIncrementalUnitFastPath(t *testing.T) {
	items := []Item{{1, 0.5}, {1, 0.9}, {1, 0.9}, {1, 0}, {1, 0.2}}
	inc := NewIncrementalSolver()
	got, err := inc.Solve(items, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveDP(items, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profit != want.Profit || !slices.Equal(got.Take, want.Take) {
		t.Fatalf("unit path (%v, %v) != DP (%v, %v)", got.Profit, got.Take, want.Profit, want.Take)
	}
	if s := inc.Stats(); s.UnitSolves != 1 || s.FullSolves != 0 {
		t.Fatalf("unit instance took the wrong path: %+v", s)
	}
}

// TestIncrementalRejectsInvalid mirrors the Solver error contract.
func TestIncrementalRejectsInvalid(t *testing.T) {
	inc := NewIncrementalSolver()
	if _, err := inc.Solve([]Item{{2, 1}}, -1); err != ErrNegativeCapacity {
		t.Fatalf("negative capacity: err = %v", err)
	}
	if _, err := inc.Solve([]Item{{0, 1}}, 5); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := inc.Solve([]Item{{2, math.NaN()}}, 5); err == nil {
		t.Fatal("NaN profit accepted")
	}
	// The failed calls must not have corrupted warm state for good ones.
	sol, err := inc.Solve([]Item{{2, 1}, {3, 2}}, 5)
	if err != nil || sol.Profit != 3 {
		t.Fatalf("solve after rejections: %v, %v", sol, err)
	}
}

// TestIncrementalSolveNoSteadyStateAllocs pins the 0 allocs/op invariant
// on both the exact and certified paths under steady-state drift (profit
// edits and tombstones at fixed instance size).
func TestIncrementalSolveNoSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		eps  float64
	}{
		{"exact", 0},
		{"certified", 0.05},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(0xA110C)
			items := make([]Item, 200)
			var total int64
			for i := range items {
				items[i] = Item{Weight: int64(r.IntRange(1, 20)), Profit: float64(r.IntRange(1, 1000)) / 100}
				total += items[i].Weight
			}
			capacity := total / 2
			inc := NewIncrementalSolver()
			inc.CertEps = tc.eps
			step := func() {
				items[r.IntRange(0, len(items)-1)].Profit = float64(r.IntRange(0, 1000)) / 100
				if _, err := inc.Solve(items, capacity); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 50; i++ { // grow all buffers to steady state
				step()
			}
			if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
				t.Fatalf("steady-state Solve allocates %.1f times per op", allocs)
			}
		})
	}
}
