package recency

import (
	"math"
	"testing"
)

// FuzzRecencyCurve feeds arbitrary (x, target) pairs from the valid
// domain (x in [0,1], target in (0,1]) to the decay and scoring curves
// and asserts the paper's range invariants: every score lands in [0, 1],
// a copy meeting its target scores exactly 1, decay never increases a
// score, and Benefit is the exact complement of the score.
func FuzzRecencyCurve(f *testing.F) {
	f.Add(1.0, 1.0)
	f.Add(0.5, 1.0)
	f.Add(0.25, 0.3)
	f.Add(0.0, 0.01)
	f.Add(1.0, 0.125)

	f.Fuzz(func(t *testing.T, x, target float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(target) || math.IsInf(target, 0) {
			return
		}
		// Fold arbitrary floats into the model's domain.
		x = math.Abs(math.Mod(x, 1))
		target = math.Abs(math.Mod(target, 1))
		if target == 0 {
			target = 1
		}

		for name, fn := range map[string]ScoreFunc{
			"inverse": Inverse, "exponential": Exponential, "identity": Identity,
		} {
			s := fn(x, target)
			if s < 0 || s > 1 || math.IsNaN(s) {
				t.Fatalf("%s(%v, %v) = %v out of [0,1]", name, x, target, s)
			}
			if name != "identity" && x >= target && s != 1 {
				t.Fatalf("%s(%v, %v) = %v, want 1 when the target is met", name, x, target, s)
			}
			b := Benefit(s)
			if b < 0 || b > 1 || (s <= 1 && math.Abs(b-(1-s)) > 1e-15) {
				t.Fatalf("Benefit(%v) = %v", s, b)
			}
		}

		next := DefaultDecay.Next(x)
		if next < 0 || next > x || math.IsNaN(next) {
			t.Fatalf("Next(%v) = %v: decay must stay in [0, x]", x, next)
		}
		if x > 0 {
			// C = 1 closed form: one update on 1/(n+1) gives 1/(n+2).
			if want := x / (x + 1); math.Abs(next-want) > 1e-12 {
				t.Fatalf("Next(%v) = %v, want %v", x, next, want)
			}
		}
	})
}
