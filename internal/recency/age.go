package recency

import (
	"fmt"
	"math"
)

// The paper assumes the base station observes every server update (its
// recency scores decay exactly per missed update). Real deployments — web
// proxies in particular — usually cannot: they only know how long ago a
// copy was fetched. AgeModel supplies that estimated view: for a master
// updated by a memoryless (Poisson-like) process with a known mean period,
// the probability that a copy of the given age is still identical to the
// master is exp(-age/period), and the expected number of updates missed is
// age/period, which plugs into the same decay law the paper uses.
type AgeModel struct {
	// Period is the object's mean ticks between master updates.
	Period float64
	// Decay converts an expected missed-update count into a recency
	// score; the zero value uses DefaultDecay.
	Decay Decay
}

// NewAgeModel validates and builds an estimator.
func NewAgeModel(period float64) (*AgeModel, error) {
	if period <= 0 || math.IsNaN(period) || math.IsInf(period, 0) {
		return nil, fmt.Errorf("recency: update period %v must be positive and finite", period)
	}
	return &AgeModel{Period: period, Decay: DefaultDecay}, nil
}

// PFresh returns the probability that a copy of the given age still
// matches the master: exp(-age/period). Negative ages clamp to fresh.
func (m *AgeModel) PFresh(age float64) float64 {
	if age <= 0 {
		return 1
	}
	return math.Exp(-age / m.Period)
}

// ExpectedLag returns the expected number of master updates a copy of the
// given age has missed.
func (m *AgeModel) ExpectedLag(age float64) float64 {
	if age <= 0 {
		return 0
	}
	return age / m.Period
}

// Score estimates the recency score of a copy of the given age by
// evaluating the paper's decay law at the expected lag: with C = 1 the
// closed form is 1/(lag+1).
func (m *AgeModel) Score(age float64) float64 {
	lag := m.ExpectedLag(age)
	d := m.Decay
	if d.C == 0 {
		d = DefaultDecay
	}
	if d.C == 1 {
		return 1 / (lag + 1)
	}
	// General C: interpolate between the integer-lag decay values.
	lo := int(lag)
	frac := lag - float64(lo)
	x0 := d.AfterUpdates(lo)
	x1 := d.AfterUpdates(lo + 1)
	return x0*(1-frac) + x1*frac
}

// TTL returns the age at which the estimated recency score falls to the
// given threshold in (0, 1) — the classic time-to-live a cache would
// assign under this model. For C = 1: score = 1/(age/period+1), so
// TTL = period*(1/threshold - 1). For general C it bisects.
func (m *AgeModel) TTL(threshold float64) (float64, error) {
	if threshold <= 0 || threshold >= 1 {
		return 0, fmt.Errorf("recency: TTL threshold %v out of (0,1)", threshold)
	}
	d := m.Decay
	if d.C == 0 {
		d = DefaultDecay
	}
	if d.C == 1 {
		return m.Period * (1/threshold - 1), nil
	}
	lo, hi := 0.0, m.Period
	for m.Score(hi) > threshold {
		hi *= 2
		if hi > m.Period*1e9 {
			return 0, fmt.Errorf("recency: decay C=%v never reaches threshold %v", d.C, threshold)
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-9*m.Period; i++ {
		mid := (lo + hi) / 2
		if m.Score(mid) > threshold {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
