// Package recency implements the paper's recency model: the decay of a
// cached copy's recency score as the remote master is updated, the
// client-facing scoring functions f_C(x), and the per-client benefit of
// refreshing an object.
//
// A recency score x lies in (0, 1]; a copy identical to the remote master
// has x = 1. Each time the master is updated while the cached copy stays
// put, the score decays with
//
//	x' = C / (1/x + 1)
//
// (paper Section 3.2), so with the default C = 1 a copy that has missed n
// updates has score 1/(n+1).
//
// A client states a target recency C_t in (0, 1]. If the cached copy's
// score x meets or exceeds C_t the client scores the answer 1.0; otherwise
// the score falls off with one of the paper's two scoring functions
//
//	f_C(x) = 1 / (1 + |x/C - 1|)      (Inverse)
//	f_C(x) = exp(-|x/C - 1|)          (Exponential)
//
// A remotely fetched copy always scores 1.0. The benefit to a client of
// downloading is 1 - score(cached copy): the knapsack profit of an object
// is the sum of its requesters' benefits.
package recency

import (
	"fmt"
	"math"
)

// Fresh is the recency score of a copy identical to the remote master.
const Fresh = 1.0

// Decay models the per-update recency decay x' = C/(1/x+1). The paper
// leaves C unspecified ("where C is a constant"); the default used across
// this repository is C = 1, under which a copy that has missed n updates
// scores 1/(n+1).
type Decay struct {
	C float64
}

// DefaultDecay is the decay model used by the paper reproduction runs.
var DefaultDecay = Decay{C: 1}

// Next returns the score after one more master update. Non-positive input
// scores are treated as an infinitesimally stale copy and stay ~0.
func (d Decay) Next(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return d.C / (1/x + 1)
}

// AfterUpdates returns the score of an initially fresh copy after n master
// updates. For C = 1 this is 1/(n+1) in closed form; for other C it
// iterates.
func (d Decay) AfterUpdates(n int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("recency: negative update count %d", n))
	}
	if d.C == 1 {
		return 1 / float64(n+1)
	}
	x := Fresh
	for i := 0; i < n; i++ {
		x = d.Next(x)
	}
	return x
}

// ScoreFunc maps a cached copy's recency score x and a client's target
// recency C to the client's satisfaction score in (0, 1].
type ScoreFunc func(x, target float64) float64

// Inverse is the paper's first scoring function,
// f_C(x) = 1/(1+|x/C-1|), clamped to 1.0 when x meets the target.
func Inverse(x, target float64) float64 {
	if meets(x, target) {
		return 1
	}
	return 1 / (1 + math.Abs(x/target-1))
}

// Exponential is the paper's second scoring function,
// f_C(x) = exp(-|x/C-1|), clamped to 1.0 when x meets the target.
func Exponential(x, target float64) float64 {
	if meets(x, target) {
		return 1
	}
	return math.Exp(-math.Abs(x/target - 1))
}

// Identity treats the recency score itself as the client score (with no
// per-client target). Section 4's Table 1 workloads specify the cache
// recency score averaged over requesting clients directly, so the solution-
// space analysis uses this function.
func Identity(x, _ float64) float64 {
	if x >= 1 {
		return 1
	}
	if x < 0 {
		return 0
	}
	return x
}

func meets(x, target float64) bool {
	return target > 0 && x >= target
}

// Benefit returns the gain to one client of downloading a fresh copy
// rather than serving a cached copy whose score under the client's target
// is score: benefit = 1 - score (a remote copy always scores 1).
func Benefit(score float64) float64 {
	if score >= 1 {
		return 0
	}
	if score < 0 {
		return 1
	}
	return 1 - score
}

// Tracker tracks the recency score of one cached copy via update counting:
// it records how many master updates the copy has missed and derives the
// score from the decay model. Refreshing resets the lag to zero.
type Tracker struct {
	decay Decay
	lag   int
}

// NewTracker returns a tracker for a freshly downloaded copy.
func NewTracker(d Decay) *Tracker {
	return &Tracker{decay: d}
}

// OnMasterUpdate records that the remote master changed while the cached
// copy stayed put.
func (t *Tracker) OnMasterUpdate() { t.lag++ }

// OnRefresh records that the cached copy was replaced with the current
// master version.
func (t *Tracker) OnRefresh() { t.lag = 0 }

// Lag returns the number of master updates the copy has missed.
func (t *Tracker) Lag() int { return t.lag }

// Score returns the copy's current recency score.
func (t *Tracker) Score() float64 { return t.decay.AfterUpdates(t.lag) }

// Stale reports whether the copy differs from the master.
func (t *Tracker) Stale() bool { return t.lag > 0 }
