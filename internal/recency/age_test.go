package recency

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAgeModelValidation(t *testing.T) {
	for _, period := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewAgeModel(period); err == nil {
			t.Fatalf("period %v accepted", period)
		}
	}
	if _, err := NewAgeModel(5); err != nil {
		t.Fatal(err)
	}
}

func TestPFresh(t *testing.T) {
	m, _ := NewAgeModel(10)
	if m.PFresh(0) != 1 || m.PFresh(-5) != 1 {
		t.Fatal("fresh copy probability != 1")
	}
	if got, want := m.PFresh(10), math.Exp(-1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PFresh(period) = %v, want %v", got, want)
	}
	// Strictly decreasing in age.
	if m.PFresh(20) >= m.PFresh(10) {
		t.Fatal("PFresh not decreasing")
	}
}

func TestExpectedLag(t *testing.T) {
	m, _ := NewAgeModel(4)
	if m.ExpectedLag(0) != 0 || m.ExpectedLag(-1) != 0 {
		t.Fatal("non-positive age lag != 0")
	}
	if got := m.ExpectedLag(8); got != 2 {
		t.Fatalf("ExpectedLag(8) = %v, want 2", got)
	}
}

func TestScoreClosedForm(t *testing.T) {
	m, _ := NewAgeModel(5)
	// C=1: score = 1/(age/period + 1).
	cases := []struct{ age, want float64 }{
		{0, 1},
		{5, 0.5},
		{10, 1.0 / 3},
		{20, 0.2},
	}
	for _, c := range cases {
		if got := m.Score(c.age); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Score(%v) = %v, want %v", c.age, got, c.want)
		}
	}
}

func TestScoreMatchesExactDecayAtIntegerLags(t *testing.T) {
	// When the copy's age is an exact multiple of the period, the
	// estimated score equals the paper's exact decay at that lag.
	m, _ := NewAgeModel(3)
	for lag := 0; lag <= 10; lag++ {
		est := m.Score(float64(lag) * 3)
		exact := DefaultDecay.AfterUpdates(lag)
		if math.Abs(est-exact) > 1e-12 {
			t.Fatalf("lag %d: estimate %v != exact %v", lag, est, exact)
		}
	}
}

func TestScoreGeneralC(t *testing.T) {
	m := &AgeModel{Period: 2, Decay: Decay{C: 0.5}}
	// At age = period (expected lag 1): exact decay value for one update.
	want := Decay{C: 0.5}.AfterUpdates(1)
	if got := m.Score(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Score at one period = %v, want %v", got, want)
	}
	// Between integer lags: strictly between neighbouring decay values.
	mid := m.Score(3)
	lo := Decay{C: 0.5}.AfterUpdates(2)
	hi := Decay{C: 0.5}.AfterUpdates(1)
	if mid <= lo || mid >= hi {
		t.Fatalf("interpolated score %v not in (%v, %v)", mid, lo, hi)
	}
}

func TestScoreMonotoneProperty(t *testing.T) {
	m, _ := NewAgeModel(7)
	f := func(a, b uint16) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return m.Score(x) >= m.Score(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTTLClosedForm(t *testing.T) {
	m, _ := NewAgeModel(10)
	// threshold 0.5 → TTL = period*(1/0.5 - 1) = 10.
	ttl, err := m.TTL(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ttl-10) > 1e-9 {
		t.Fatalf("TTL(0.5) = %v, want 10", ttl)
	}
	// Score at the TTL equals the threshold.
	if got := m.Score(ttl); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Score(TTL) = %v, want 0.5", got)
	}
}

func TestTTLGeneralCBisection(t *testing.T) {
	m := &AgeModel{Period: 4, Decay: Decay{C: 0.9}}
	ttl, err := m.TTL(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Score(ttl); math.Abs(got-0.3) > 1e-6 {
		t.Fatalf("Score(TTL) = %v, want 0.3", got)
	}
}

func TestTTLValidation(t *testing.T) {
	m, _ := NewAgeModel(10)
	for _, thr := range []float64{0, 1, -0.5, 2} {
		if _, err := m.TTL(thr); err == nil {
			t.Fatalf("threshold %v accepted", thr)
		}
	}
}
