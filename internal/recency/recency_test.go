package recency

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDecayClosedForm(t *testing.T) {
	d := DefaultDecay
	// With C = 1: after n updates an initially fresh copy scores 1/(n+1).
	for n := 0; n <= 10; n++ {
		want := 1 / float64(n+1)
		if got := d.AfterUpdates(n); math.Abs(got-want) > 1e-12 {
			t.Fatalf("AfterUpdates(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestDecayIterationMatchesClosedForm(t *testing.T) {
	d := DefaultDecay
	x := Fresh
	for n := 1; n <= 20; n++ {
		x = d.Next(x)
		if got := d.AfterUpdates(n); math.Abs(got-x) > 1e-12 {
			t.Fatalf("iterated decay %v != AfterUpdates(%d) = %v", x, n, got)
		}
	}
}

func TestDecayGeneralC(t *testing.T) {
	d := Decay{C: 0.5}
	// x' = 0.5/(1/1+1) = 0.25 after one update of a fresh copy.
	if got := d.Next(1); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Next(1) with C=0.5 = %v, want 0.25", got)
	}
	if got := d.AfterUpdates(1); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("AfterUpdates(1) = %v, want 0.25", got)
	}
}

func TestDecayMonotoneDecreasing(t *testing.T) {
	f := func(seed int64) bool {
		// Any starting score in (0,1] strictly decreases under C=1 decay.
		x := float64(uint64(seed)%1000+1) / 1000
		next := DefaultDecay.Next(x)
		return next < x && next > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecayEdgeCases(t *testing.T) {
	if got := DefaultDecay.Next(0); got != 0 {
		t.Fatalf("Next(0) = %v, want 0", got)
	}
	if got := DefaultDecay.Next(-1); got != 0 {
		t.Fatalf("Next(-1) = %v, want 0", got)
	}
}

func TestAfterUpdatesNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AfterUpdates(-1) did not panic")
		}
	}()
	DefaultDecay.AfterUpdates(-1)
}

func TestInverseScore(t *testing.T) {
	// Meets target: exact 1.0.
	if got := Inverse(0.8, 0.5); got != 1 {
		t.Fatalf("Inverse(0.8, 0.5) = %v, want 1", got)
	}
	if got := Inverse(0.5, 0.5); got != 1 {
		t.Fatalf("Inverse(0.5, 0.5) = %v, want 1", got)
	}
	// Below target: 1/(1+|x/C-1|).
	got := Inverse(0.25, 0.5)
	want := 1 / (1 + 0.5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Inverse(0.25, 0.5) = %v, want %v", got, want)
	}
}

func TestExponentialScore(t *testing.T) {
	if got := Exponential(1, 0.5); got != 1 {
		t.Fatalf("Exponential(1, 0.5) = %v, want 1", got)
	}
	got := Exponential(0.25, 0.5)
	want := math.Exp(-0.5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Exponential(0.25, 0.5) = %v, want %v", got, want)
	}
}

func TestScoreFunctionsApproachZero(t *testing.T) {
	// "The score approaches 0 as x gets further from C."
	for _, f := range []ScoreFunc{Inverse, Exponential} {
		prev := f(0.9, 1)
		for _, x := range []float64{0.5, 0.1, 0.01, 0.001} {
			cur := f(x, 1)
			if cur >= prev {
				t.Fatalf("score not decreasing as x falls: f(%v)=%v >= %v", x, cur, prev)
			}
			prev = cur
		}
		if prev > 0.6 {
			t.Fatalf("score at x=0.001 is %v, expected near its floor", prev)
		}
	}
}

func TestScoreFuncProperty(t *testing.T) {
	// Property: scores always lie in (0, 1] for x in (0,1], target in (0,1].
	f := func(xi, ti uint16) bool {
		x := float64(xi%1000+1) / 1000
		target := float64(ti%1000+1) / 1000
		for _, fn := range []ScoreFunc{Inverse, Exponential, Identity} {
			s := fn(x, target)
			if s <= 0 || s > 1 {
				return false
			}
			if x >= target && fn(x, target) != 1 && !isIdentity(fn) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func isIdentity(fn ScoreFunc) bool {
	return fn(0.37, 0.01) == 0.37
}

func TestIdentityScore(t *testing.T) {
	if got := Identity(0.4, 0.9); got != 0.4 {
		t.Fatalf("Identity(0.4, _) = %v, want 0.4", got)
	}
	if got := Identity(1.5, 0); got != 1 {
		t.Fatalf("Identity(1.5, _) = %v, want 1", got)
	}
	if got := Identity(-0.5, 0); got != 0 {
		t.Fatalf("Identity(-0.5, _) = %v, want 0", got)
	}
}

func TestBenefit(t *testing.T) {
	if got := Benefit(1); got != 0 {
		t.Fatalf("Benefit(1) = %v, want 0", got)
	}
	if got := Benefit(0.3); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("Benefit(0.3) = %v, want 0.7", got)
	}
	if got := Benefit(-0.5); got != 1 {
		t.Fatalf("Benefit(-0.5) = %v, want 1", got)
	}
	if got := Benefit(1.2); got != 0 {
		t.Fatalf("Benefit(1.2) = %v, want 0", got)
	}
}

func TestBenefitIncreasesWithStaleness(t *testing.T) {
	// Paper: "the value of benefit(i) increases as C_i is more recent and
	// when the cached object is older."
	d := DefaultDecay
	target := 0.9
	prev := -1.0
	for lag := 0; lag < 10; lag++ {
		b := Benefit(Inverse(d.AfterUpdates(lag), target))
		if b < prev {
			t.Fatalf("benefit decreased with staleness at lag %d: %v < %v", lag, b, prev)
		}
		prev = b
	}
	// And with a more demanding target for the same staleness.
	x := d.AfterUpdates(3)
	if Benefit(Inverse(x, 0.9)) <= Benefit(Inverse(x, 0.2)) {
		t.Fatal("benefit did not increase with a more recent target")
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker(DefaultDecay)
	if tr.Stale() || tr.Lag() != 0 || tr.Score() != 1 {
		t.Fatalf("fresh tracker: stale=%v lag=%d score=%v", tr.Stale(), tr.Lag(), tr.Score())
	}
	tr.OnMasterUpdate()
	tr.OnMasterUpdate()
	if !tr.Stale() || tr.Lag() != 2 {
		t.Fatalf("after 2 updates: stale=%v lag=%d", tr.Stale(), tr.Lag())
	}
	if got := tr.Score(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("score after 2 missed updates = %v, want 1/3", got)
	}
	tr.OnRefresh()
	if tr.Stale() || tr.Score() != 1 {
		t.Fatalf("after refresh: stale=%v score=%v", tr.Stale(), tr.Score())
	}
}
