package mobicache

import "testing"

// TestRunSimulationDisseminationStrategies runs every dissemination
// strategy through the facade: each must complete, answer every request,
// and report its own strategy name and counters.
func TestRunSimulationDisseminationStrategies(t *testing.T) {
	for _, strategy := range []string{"push-ts", "push-at", "broadcast-flat", "broadcast-disk", "hybrid-pushpull"} {
		rep, err := RunSimulation(SimulationConfig{
			Objects:         64,
			UpdatePeriod:    5,
			RequestsPerTick: 20,
			Access:          "zipf",
			Warmup:          20,
			Ticks:           100,
			Seed:            42,
			Dissemination:   &DisseminationConfig{Strategy: strategy, Interval: 10, SleepProb: 0.2},
		})
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if rep.Dissemination != strategy {
			t.Fatalf("%s: report names strategy %q", strategy, rep.Dissemination)
		}
		if rep.Requests != 2000 {
			t.Fatalf("%s: %d requests, want 2000", strategy, rep.Requests)
		}
		if rep.MeanScore <= 0 || rep.MeanScore > 1 {
			t.Fatalf("%s: mean score %v out of (0,1]", strategy, rep.MeanScore)
		}
		switch strategy {
		case "push-ts", "push-at":
			if rep.InvalidationReports == 0 || rep.InvalidatedEntries == 0 {
				t.Fatalf("%s: no invalidation traffic: %+v", strategy, rep)
			}
			if rep.Downloads == 0 {
				t.Fatalf("%s: terminal misses never downloaded", strategy)
			}
		default:
			if rep.PushServed+rep.PullServed != rep.Requests {
				t.Fatalf("%s: push+pull %d != requests %d", strategy, rep.PushServed+rep.PullServed, rep.Requests)
			}
			if rep.PushUnits == 0 || rep.MeanWaitSlots <= 0 {
				t.Fatalf("%s: broadcast cost missing: %+v", strategy, rep)
			}
		}
	}
}

// TestDisseminationNilAndOnDemandIdentical confirms the default path is
// untouched: a nil Dissemination and an explicit "on-demand" strategy
// produce byte-identical reports from the station engine.
func TestDisseminationNilAndOnDemandIdentical(t *testing.T) {
	base := SimulationConfig{
		Objects:         50,
		BudgetPerTick:   8,
		RequestsPerTick: 25,
		Access:          "linear",
		Warmup:          10,
		Ticks:           60,
		Seed:            7,
	}
	a, err := RunSimulation(base)
	if err != nil {
		t.Fatal(err)
	}
	withCfg := base
	withCfg.Dissemination = &DisseminationConfig{Strategy: "on-demand"}
	b, err := RunSimulation(withCfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("on-demand reports diverge:\n%+v\n%+v", a, b)
	}
	if a.Dissemination != "" {
		t.Fatalf("station path stamped dissemination %q", a.Dissemination)
	}
}

// TestDisseminationConflictsRejected pins the config validation: a push
// strategy cannot be combined with a refresh policy or the resilience
// layer, and unknown strategy names fail fast.
func TestDisseminationConflictsRejected(t *testing.T) {
	base := SimulationConfig{Objects: 32, RequestsPerTick: 5, Ticks: 10, Seed: 1}
	cases := []struct {
		name   string
		mutate func(*SimulationConfig)
	}{
		{"unknown strategy", func(c *SimulationConfig) {
			c.Dissemination = &DisseminationConfig{Strategy: "rumor-mill"}
		}},
		{"policy conflict", func(c *SimulationConfig) {
			c.Policy = "async-round-robin"
			c.Dissemination = &DisseminationConfig{Strategy: "push-ts"}
		}},
		{"resilience conflict", func(c *SimulationConfig) {
			c.Resilience = &ResilienceConfig{MaxRequestsPerTick: 10}
			c.Dissemination = &DisseminationConfig{Strategy: "broadcast-flat"}
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := RunSimulation(cfg); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

// TestMulticellDisseminationWorkersInvariant runs a push-ts multi-cell
// deployment with cell outages serially and in parallel: the reports
// must be identical for any worker count and carry the per-strategy
// counters aggregated across cells.
func TestMulticellDisseminationWorkersInvariant(t *testing.T) {
	base := MulticellConfig{
		Cells:         4,
		Objects:       60,
		UpdatePeriod:  5,
		Clients:       80,
		MeanResidence: 30,
		RequestProb:   0.5,
		Access:        "zipf",
		Ticks:         300,
		Seed:          123,
		CellOutages:   []CellOutage{{Cell: 1, From: 50, To: 120}},
		Dissemination: &DisseminationConfig{Strategy: "push-ts", Interval: 10, SleepProb: 0.1},
	}
	serialCfg := base
	serialCfg.Workers = 1
	serial, err := RunMulticell(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parallelCfg := base
	parallelCfg.Workers = 4
	par, err := RunMulticell(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.MeanScore != par.MeanScore || serial.Requests != par.Requests ||
		serial.InvalidationReports != par.InvalidationReports ||
		serial.InvalidatedEntries != par.InvalidatedEntries ||
		serial.PushUnits != par.PushUnits {
		t.Fatalf("worker count changed the run:\nserial:   %+v\nparallel: %+v", serial, par)
	}
	if serial.Dissemination != "push-ts" {
		t.Fatalf("report names strategy %q", serial.Dissemination)
	}
	if serial.InvalidationReports == 0 || serial.Downloads == 0 {
		t.Fatalf("push traffic missing: %+v", serial)
	}
	if serial.Reroutes == 0 || serial.CellDownTicks != 70 {
		t.Fatalf("cell outage ignored: reroutes=%d downTicks=%d", serial.Reroutes, serial.CellDownTicks)
	}

	// The same deployment rejects strategy-incompatible layers.
	for _, mutate := range []func(*MulticellConfig){
		func(c *MulticellConfig) { c.CacheSharing = true },
		func(c *MulticellConfig) { c.Resilience = &ResilienceConfig{MaxRequestsPerTick: 5} },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := RunMulticell(cfg); err == nil {
			t.Fatal("incompatible layer accepted alongside dissemination")
		}
	}
}

// TestDisseminationUnderFaultsDeterministic runs push-ts over a faulty
// fixed network twice: failed refetches must surface in the report and
// identical seeds must replay identically.
func TestDisseminationUnderFaultsDeterministic(t *testing.T) {
	cfg := SimulationConfig{
		Objects:         48,
		UpdatePeriod:    4,
		RequestsPerTick: 30,
		Access:          "zipf",
		Warmup:          10,
		Ticks:           80,
		Seed:            99,
		Dissemination:   &DisseminationConfig{Strategy: "push-ts", Interval: 8, SleepProb: 0.3},
		Fault: &FaultConfig{
			FailureProb: 0.3,
			Outages:     []FaultWindow{{Server: AllServers, From: 30, To: 40, Every: 0}},
			Retry:       RetryConfig{MaxAttempts: 2, BaseBackoff: 0.5},
		},
	}
	a, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if a.FailedDownloads == 0 || a.Retries == 0 {
		t.Fatalf("fault path silent: %+v", a)
	}
	if a.MeanScore >= 1 {
		t.Fatalf("mean score %v unaffected by faults", a.MeanScore)
	}
}
