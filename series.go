package mobicache

import (
	"mobicache/internal/basestation"
	"mobicache/internal/dissemination"
	"mobicache/internal/multicell"
)

// This file is the per-tick observation surface used by the experiment
// runner (cmd/experiment-runner): the same simulations RunSimulation and
// RunMulticell execute, but with a sampling callback invoked after every
// measured tick so harnesses can archive time series (per-tick CSVs)
// without re-running a configuration once per horizon length. Sampling
// never perturbs a run — the final report is byte-identical to the
// unsampled entry point's.

// RunSimulationTicks runs the configured single-cell simulation exactly
// as RunSimulation does, but calls sample after every measured tick with
// the number of measured ticks completed so far (1-based) and the report
// aggregated over them. Warmup ticks are not sampled. A non-nil error
// from sample aborts the run and is returned; a nil sample makes this
// identical to RunSimulation.
func RunSimulationTicks(cfg SimulationConfig, sample func(ticks int, rep SimulationReport) error) (SimulationReport, error) {
	var rep SimulationReport
	if err := validateHorizon(cfg); err != nil {
		return rep, err
	}
	if strat, err := cfg.Dissemination.strategy(); err != nil {
		return rep, err
	} else if strat != dissemination.OnDemand {
		return runDissemination(cfg, strat, sample)
	}
	st, srv, err := buildStation(cfg)
	if err != nil {
		return rep, err
	}
	gen, _, err := buildGenerator(cfg)
	if err != nil {
		return rep, err
	}
	if _, err := st.Run(0, cfg.Warmup, gen); err != nil {
		return rep, err
	}
	// The measured phase of station.Run, unrolled one tick at a time so
	// the accumulating totals can be observed between ticks.
	var totals basestation.Totals
	for t := 0; t < cfg.Ticks; t++ {
		tick := cfg.Warmup + t
		res, err := st.RunTick(tick, gen.Tick(tick))
		if err != nil {
			return rep, err
		}
		totals.Add(res)
		if sample != nil {
			if err := sample(t+1, report(st, srv, totals)); err != nil {
				return rep, err
			}
		}
	}
	return report(st, srv, totals), nil
}

// RunMulticellTicks runs the configured multi-cell deployment exactly as
// RunMulticell does, but calls sample after every tick with the number
// of ticks completed so far (1-based) and the report aggregated over
// them. A non-nil error from sample aborts the run and is returned; a
// nil sample makes this identical to RunMulticell.
func RunMulticellTicks(cfg MulticellConfig, sample func(ticks int, rep MulticellReport) error) (MulticellReport, error) {
	sys, err := buildMulticell(cfg)
	if err != nil {
		return MulticellReport{}, err
	}
	var inner func(int, multicell.Report) error
	if sample != nil {
		inner = func(n int, r multicell.Report) error { return sample(n, multicellReport(r)) }
	}
	r, err := sys.RunSampled(cfg.Ticks, inner)
	if err != nil {
		return MulticellReport{}, err
	}
	return multicellReport(r), nil
}
