package mobicache

import "testing"

// chaosCounters are the resilience counters each chaos scenario pins
// exactly: any drift in shedding, breaker behaviour, or fallback
// accounting under faults is a regression, not noise.
type chaosCounters struct {
	Shed, ShortCircuits, Trips, Probes, Degraded, Failed, Stale uint64
}

func chaosOf(rep SimulationReport) chaosCounters {
	return chaosCounters{
		Shed:          rep.ShedRequests,
		ShortCircuits: rep.ShortCircuits,
		Trips:         rep.BreakerTrips,
		Probes:        rep.BreakerProbes,
		Degraded:      rep.DegradedTicks,
		Failed:        rep.FailedDownloads,
		Stale:         rep.StaleFallbacks,
	}
}

// TestChaosScenariosDeterministic is the chaos harness: each scenario
// injects a failure profile (blackout, flapping upstream, request
// overload) against a resilient station and pins the exact shed /
// breaker-trip / fallback counters, then reruns to prove bit-identical
// replay. The paired run with resilience off shows the layer earning its
// keep: the breaker saves retry budget, admission bounds served load.
func TestChaosScenariosDeterministic(t *testing.T) {
	base := SimulationConfig{
		Objects:         50,
		UpdatePeriod:    1,
		Policy:          "on-demand-stale",
		RequestsPerTick: 20,
		Access:          "zipf",
		Warmup:          10,
		Ticks:           40,
		Seed:            12345,
	}
	scenarios := []struct {
		name       string
		fault      *FaultConfig
		resilience ResilienceConfig
		want       chaosCounters
		check      func(t *testing.T, with, without SimulationReport)
	}{
		{
			// The blackout from the fault harness, now behind a breaker:
			// three consecutive failures trip it and the station rides
			// out the rest of the outage in stale-only mode instead of
			// burning retries against a dead upstream.
			name: "blackout-breaker",
			fault: &FaultConfig{
				Outages: []FaultWindow{{Server: AllServers, From: 20, To: 30}},
				Retry:   RetryConfig{MaxAttempts: 2, BaseBackoff: 0.5},
			},
			resilience: ResilienceConfig{BreakerFailures: 3, BreakerOpenTicks: 4},
			want:       chaosCounters{ShortCircuits: 32, Trips: 3, Probes: 3, Degraded: 9, Failed: 5, Stale: 236},
			check: func(t *testing.T, with, without SimulationReport) {
				if with.FailedDownloads >= without.FailedDownloads {
					t.Errorf("breaker saved nothing: %d failed downloads with, %d without",
						with.FailedDownloads, without.FailedDownloads)
				}
				if with.Retries >= without.Retries {
					t.Errorf("breaker burned as many retries as raw retrying: %d vs %d",
						with.Retries, without.Retries)
				}
				// The cost side of the trade: stale-only mode outlives the
				// outage until a probe succeeds, so the breaker serves a
				// few MORE requests stale than raw retrying — never fewer.
				if with.StaleFallbacks < without.StaleFallbacks {
					t.Errorf("breaker served fresher than raw retrying under blackout: %d vs %d stale",
						with.StaleFallbacks, without.StaleFallbacks)
				}
			},
		},
		{
			// A flapping upstream: down 3 of every 6 ticks. The breaker
			// trips during each down phase and reprobes its way back
			// during each up phase.
			name: "flapping-breaker",
			fault: &FaultConfig{
				Outages: []FaultWindow{{Server: AllServers, From: 12, To: 15, Every: 6}},
				Retry:   RetryConfig{MaxAttempts: 3, BaseBackoff: 1, MaxBackoff: 4},
			},
			resilience: ResilienceConfig{BreakerFailures: 2, BreakerOpenTicks: 3, BreakerCloseAfter: 1},
			want:       chaosCounters{ShortCircuits: 73, Trips: 7, Probes: 6, Degraded: 13, Failed: 14, Stale: 395},
			check: func(t *testing.T, with, without SimulationReport) {
				if with.Retries >= without.Retries {
					t.Errorf("flapping: breaker burned %d retries, raw run %d", with.Retries, without.Retries)
				}
			},
		},
		{
			// Pure overload, healthy network: admission control sheds the
			// excess above 12 requests/tick every tick — deterministically
			// the requests the cache already serves best.
			name:       "overload-shed",
			resilience: ResilienceConfig{MaxRequestsPerTick: 12},
			want:       chaosCounters{Shed: 320},
			check: func(t *testing.T, with, without SimulationReport) {
				if with.ShedTicks != uint64(with.Ticks) {
					t.Errorf("overload every tick: shed on %d of %d ticks", with.ShedTicks, with.Ticks)
				}
				if with.Requests+with.ShedRequests != without.Requests {
					t.Errorf("admitted %d + shed %d != offered %d",
						with.Requests, with.ShedRequests, without.Requests)
				}
			},
		},
		{
			// Blackout and overload at once: the ladder runs all the way
			// down — shedding on every tick, stale-only while the breaker
			// is open.
			name: "blackout-overload",
			fault: &FaultConfig{
				Outages: []FaultWindow{{Server: AllServers, From: 20, To: 30}},
				Retry:   RetryConfig{MaxAttempts: 2, BaseBackoff: 0.5},
			},
			// DegradedTicks stays 0 here: the mode gauge reports the WORST
			// rung of the ladder each tick, and with overload shedding on
			// every tick Shed outranks StaleOnly.
			resilience: ResilienceConfig{BreakerFailures: 3, BreakerOpenTicks: 4, MaxRequestsPerTick: 12},
			want:       chaosCounters{Shed: 320, ShortCircuits: 23, Trips: 3, Probes: 3, Failed: 5, Stale: 140},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			cfg := base
			cfg.Fault = sc.fault
			res := sc.resilience
			cfg.Resilience = &res
			rep, err := RunSimulation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := chaosOf(rep); got != sc.want {
				t.Errorf("counters %+v, want %+v", got, sc.want)
			}
			// Identical rerun reproduces the report bit for bit.
			again, err := RunSimulation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if again != rep {
				t.Errorf("rerun diverged:\n first %+v\nsecond %+v", rep, again)
			}
			if sc.check != nil {
				raw := base
				raw.Fault = sc.fault
				without, err := RunSimulation(raw)
				if err != nil {
					t.Fatal(err)
				}
				sc.check(t, rep, without)
			}
		})
	}
}

// TestBreakerZeroFaultMatchesIdealPath extends the zero-fault identity to
// the resilience layer: a breaker over a healthy fetch path never opens,
// generous admission never sheds, and the report matches the ideal run on
// every field — which is what keeps Figures 2-6 byte-identical with the
// resilience machinery merged.
func TestBreakerZeroFaultMatchesIdealPath(t *testing.T) {
	base := SimulationConfig{
		Objects:         80,
		UpdatePeriod:    3,
		Policy:          "on-demand-knapsack",
		BudgetPerTick:   12,
		RequestsPerTick: 30,
		Access:          "zipf",
		Warmup:          20,
		Ticks:           100,
		Seed:            7,
	}
	ideal, err := RunSimulation(base)
	if err != nil {
		t.Fatal(err)
	}
	armed := base
	armed.Resilience = &ResilienceConfig{BreakerFailures: 3, MaxRequestsPerTick: 10000}
	rep, err := RunSimulation(armed)
	if err != nil {
		t.Fatal(err)
	}
	if rep != ideal {
		t.Fatalf("armed-but-idle resilience diverged from the ideal path:\nideal %+v\narmed %+v", ideal, rep)
	}
}

// TestCellDeathChaos drives the multi-cell failure domains end-to-end
// through the facade: a single-cell death reroutes every request with
// none lost, a total blackout loses exactly the darkened requests, and
// both replay bit-identically.
func TestCellDeathChaos(t *testing.T) {
	base := MulticellConfig{
		Cells:         3,
		Objects:       60,
		BudgetPerTick: 8,
		Clients:       90,
		RequestProb:   0.4,
		Access:        "zipf",
		Ticks:         80,
		Seed:          42,
	}
	plain, err := RunMulticell(base)
	if err != nil {
		t.Fatal(err)
	}

	oneDown := base
	oneDown.CellOutages = []CellOutage{{Cell: 1, From: 20, To: 50}}
	rep, err := RunMulticell(oneDown)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellDownTicks != 30 {
		t.Errorf("CellDownTicks = %d, want 30", rep.CellDownTicks)
	}
	if rep.Reroutes == 0 || rep.LostRequests != 0 {
		t.Errorf("single-cell death: %d reroutes, %d lost; want >0 rerouted, 0 lost", rep.Reroutes, rep.LostRequests)
	}
	if rep.Requests != plain.Requests {
		t.Errorf("reroute conservation broken: served %d, fault-free %d", rep.Requests, plain.Requests)
	}

	allDown := base
	allDown.CellOutages = []CellOutage{{Cell: AllCells, From: 20, To: 30}}
	dark, err := RunMulticell(allDown)
	if err != nil {
		t.Fatal(err)
	}
	if dark.LostRequests == 0 || dark.Reroutes != 0 {
		t.Errorf("total blackout: %d lost, %d rerouted; want >0 lost, 0 rerouted", dark.LostRequests, dark.Reroutes)
	}
	if dark.Requests+dark.LostRequests != plain.Requests {
		t.Errorf("blackout accounting: served %d + lost %d != offered %d",
			dark.Requests, dark.LostRequests, plain.Requests)
	}

	// Overlapping windows on one cell are rejected up front.
	bad := base
	bad.CellOutages = []CellOutage{{Cell: 0, From: 5, To: 15}, {Cell: 0, From: 10, To: 20}}
	if _, err := RunMulticell(bad); err == nil {
		t.Error("overlapping cell outages accepted")
	}

	// Bit-identical replay, resilience counters included.
	again, err := RunMulticell(oneDown)
	if err != nil {
		t.Fatal(err)
	}
	if again.Reroutes != rep.Reroutes || again.MeanScore != rep.MeanScore ||
		again.CellDownTicks != rep.CellDownTicks || again.Requests != rep.Requests {
		t.Errorf("cell-death rerun diverged:\n first %+v\nsecond %+v", rep, again)
	}
}
